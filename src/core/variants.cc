#include "variants.hh"

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>

namespace specsec::core
{

const char *
secretSourceName(SecretSource source)
{
    switch (source) {
      case SecretSource::Memory: return "memory";
      case SecretSource::Cache: return "cache";
      case SecretSource::LineFillBuffer: return "line-fill-buffer";
      case SecretSource::StoreBuffer: return "store-buffer";
      case SecretSource::LoadPort: return "load-port";
      case SecretSource::SystemRegister: return "system-register";
      case SecretSource::FpuRegister: return "fpu-register";
      case SecretSource::StaleMemory: return "stale-memory";
      case SecretSource::AddressMapping: return "address-mapping";
    }
    return "unknown";
}

const char *
covertChannelName(CovertChannelKind kind)
{
    switch (kind) {
      case CovertChannelKind::FlushReload: return "flush-reload";
      case CovertChannelKind::PrimeProbe: return "prime-probe";
    }
    return "unknown";
}

namespace
{

using enum AttackVariant;
using enum AttackClass;
using enum SecretSource;

const std::vector<VariantInfo> kVariantTable = {
    {SpectreV1, "Spectre v1", "CVE-2017-5753",
     "Boundary check bypass",
     "Boundary-check branch resolution",
     "Read out-of-bounds memory",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {SpectreV1_1, "Spectre v1.1", "CVE-2018-3693",
     "Speculative buffer overflow",
     "Boundary-check branch resolution",
     "Write out-of-bounds memory",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {SpectreV1_2, "Spectre v1.2", "N/A",
     "Overwrite read-only memory",
     "Page read-only bit check",
     "Write read-only memory",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {SpectreV2, "Spectre v2", "CVE-2017-5715",
     "Branch target injection",
     "Indirect branch target resolution",
     "Execute code not intended to be executed",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {Meltdown, "Meltdown (Spectre v3)", "CVE-2017-5754",
     "Kernel content leakage to unprivileged attacker",
     "Kernel privilege check",
     "Read from kernel memory",
     MeltdownType, "Fig. 3", {Memory},
     false, true, true, true},
    {MeltdownV3a, "Meltdown variant 1 (Spectre v3a)", "CVE-2018-3640",
     "System register value leakage to unprivileged attacker",
     "RDMSR instruction privilege check",
     "Read system register",
     MeltdownType, "Fig. 5", {SystemRegister},
     false, true, true, true},
    {SpectreV4, "Spectre v4", "CVE-2018-3639",
     "Speculative store bypass, read stale data in memory",
     "Store-load address dependency resolution",
     "Read stale data",
     SpectreType, "Fig. 6", {StaleMemory},
     false, true, true, true},
    {SpectreRsb, "Spectre RSB", "CVE-2018-15572",
     "Return mis-predict, execute wrong code",
     "Return target resolution",
     "Execute code not intended to be executed",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {Foreshadow, "Foreshadow (L1 Terminal Fault)", "CVE-2018-3615",
     "SGX enclave memory leakage",
     "Page permission check",
     "Read enclave data in L1 cache from outside enclave",
     MeltdownType, "Fig. 4", {Cache},
     false, true, true, true},
    {ForeshadowOs, "Foreshadow-OS", "CVE-2018-3620",
     "OS memory leakage",
     "Page permission check",
     "Read kernel data in cache",
     MeltdownType, "Fig. 4", {Cache},
     false, true, true, true},
    {ForeshadowVmm, "Foreshadow-VMM", "CVE-2018-3646",
     "VMM memory leakage",
     "Page permission check",
     "Read VMM data in cache",
     MeltdownType, "Fig. 4", {Cache},
     false, true, true, true},
    {LazyFp, "Lazy FP", "CVE-2018-3665",
     "Leak of FPU state",
     "FPU owner check",
     "Read stale FPU state",
     MeltdownType, "Fig. 5", {FpuRegister},
     false, true, true, true},
    {Spoiler, "Spoiler", "CVE-2019-0162",
     "Virtual-to-physical address mapping leakage",
     "Store-load address dependency resolution (partial match)",
     "Observe address-dependent store-buffer timing",
     SpectreType, "-", {AddressMapping},
     false, true, true, false},
    {Ridl, "RIDL", "CVE-2018-12126/12127",
     "In-flight data leakage across privilege boundaries",
     "Load fault check",
     "Forward data from fill buffer and load port",
     MeltdownType, "Fig. 4", {LineFillBuffer, LoadPort},
     false, true, false, true},
    {ZombieLoad, "ZombieLoad", "CVE-2018-12130",
     "Cross-privilege-boundary data sampling",
     "Load fault check",
     "Forward data from fill buffer",
     MeltdownType, "Fig. 4", {LineFillBuffer},
     false, true, false, true},
    {Fallout, "Fallout", "CVE-2018-12126",
     "Leaking data on Meltdown-resistant CPUs",
     "Load fault check",
     "Forward data from store buffer",
     MeltdownType, "Fig. 4", {StoreBuffer},
     false, true, false, true},
    {Lvi, "LVI", "CVE-2020-0551",
     "Load value injection into victim transient execution",
     "Load fault check",
     "Forward data from micro-architectural buffers (L1D cache, load "
     "port, store buffer and line fill buffer)",
     MeltdownType, "Fig. 7",
     {Cache, LoadPort, StoreBuffer, LineFillBuffer},
     false, true, false, true},
    {Taa, "TAA", "CVE-2019-11135",
     "TSX asynchronous abort data leakage",
     "TSX Asynchronous Abort Completion",
     "Load data from L1D cache, store or load buffers",
     MeltdownType, "Fig. 4", {Cache, StoreBuffer, LoadPort},
     false, true, false, true},
    {Cacheout, "CacheOut", "CVE-2020-0549",
     "Leaking data on Intel CPUs via cache evictions",
     "TSX Asynchronous Abort Completion",
     "Forward data from fill buffer",
     MeltdownType, "Fig. 4", {LineFillBuffer},
     false, true, false, true},
};

/** Channel vertices shared by every attack graph. */
struct ChannelNodes
{
    NodeId setup = graph::kInvalidNode;   ///< flush / prime
    NodeId use = graph::kInvalidNode;     ///< compute load address R
    NodeId send = graph::kInvalidNode;    ///< load R to cache / evict
    NodeId receive = graph::kInvalidNode; ///< reload / probe
    NodeId measure = graph::kInvalidNode; ///< measure time
};

/**
 * Add the covert-channel half (steps 1a, 4, 5) of an attack graph:
 * setup -> ... -> send -> receive -> measure, with the "use" node
 * (compute R) ready to be fed by the variant's secret access.
 */
ChannelNodes
addChannel(AttackGraph &g, CovertChannelKind kind)
{
    ChannelNodes ch;
    if (kind == CovertChannelKind::FlushReload) {
        ch.setup = g.addOperation("Flush Array_A (clflush)",
                                  NodeRole::Setup, AttackStep::Setup);
        ch.use = g.addOperation("Compute load address R from secret",
                                NodeRole::Use, AttackStep::UseSend);
        ch.send = g.addOperation("Load R to cache",
                                 NodeRole::Send, AttackStep::UseSend);
        ch.receive = g.addOperation("Reload Array_A",
                                    NodeRole::Receive,
                                    AttackStep::Receive);
        ch.measure = g.addOperation("Measure access time",
                                    NodeRole::Receive,
                                    AttackStep::Receive);
    } else {
        ch.setup = g.addOperation("Prime cache sets with attacker data",
                                  NodeRole::Setup, AttackStep::Setup);
        ch.use = g.addOperation("Compute load address R from secret",
                                NodeRole::Use, AttackStep::UseSend);
        ch.send = g.addOperation("Load R: evict attacker line",
                                 NodeRole::Send, AttackStep::UseSend);
        ch.receive = g.addOperation("Probe cache sets",
                                    NodeRole::Receive,
                                    AttackStep::Receive);
        ch.measure = g.addOperation("Measure access time",
                                    NodeRole::Receive,
                                    AttackStep::Receive);
    }
    g.addDependency(ch.use, ch.send, EdgeKind::Address);
    g.addDependency(ch.setup, ch.send, EdgeKind::Resource);
    g.addDependency(ch.send, ch.receive, EdgeKind::Resource);
    g.addDependency(ch.receive, ch.measure, EdgeKind::Data);
    return ch;
}

/**
 * Build a Fig. 1-shaped graph: misprediction-triggered attack where
 * the authorization is the (delayed) resolution of a prediction.
 */
AttackGraph
buildPredictionGraph(const VariantInfo &info, CovertChannelKind kind,
                     const char *mistrain_label,
                     const char *trigger_label)
{
    AttackGraph g;
    g.setName(info.name);
    const ChannelNodes ch = addChannel(g, kind);
    NodeId mistrain = graph::kInvalidNode;
    if (info.requiresMistraining) {
        mistrain = g.addOperation(mistrain_label,
                                  NodeRole::MistrainPredictor,
                                  AttackStep::Setup);
    }
    const NodeId trigger = g.addOperation(
        trigger_label, NodeRole::Trigger, AttackStep::DelayedAuth);
    const NodeId resolve = g.addOperation(
        info.authorization, NodeRole::Authorization,
        AttackStep::DelayedAuth);
    const NodeId access = g.addOperation(
        info.illegalAccess, NodeRole::SecretAccess, AttackStep::Access);
    const NodeId squash = g.addOperation(
        "Squash or commit", NodeRole::Squash, AttackStep::DelayedAuth);

    if (mistrain != graph::kInvalidNode)
        g.addDependency(mistrain, trigger, EdgeKind::Resource);
    g.addDependency(trigger, resolve, EdgeKind::Data);
    g.addDependency(trigger, access, EdgeKind::Control);
    g.addDependency(access, ch.use, EdgeKind::Data);
    g.addDependency(resolve, squash, EdgeKind::Control);
    return g;
}

/**
 * Build a Fig. 3/4-shaped graph: a faulting access whose
 * authorization (permission/fault check) and secret access live in
 * the same instruction, possibly with several alternative sources.
 */
AttackGraph
buildFaultingAccessGraph(const VariantInfo &info, CovertChannelKind kind,
                         const char *trigger_label,
                         const std::vector<std::string> &source_labels,
                         const char *squash_label)
{
    AttackGraph g;
    g.setName(info.name);
    const ChannelNodes ch = addChannel(g, kind);
    const NodeId trigger = g.addOperation(
        trigger_label, NodeRole::Trigger, AttackStep::DelayedAuth);
    const NodeId check = g.addOperation(
        info.authorization, NodeRole::Authorization,
        AttackStep::DelayedAuth);
    const NodeId squash = g.addOperation(
        squash_label, NodeRole::Squash, AttackStep::DelayedAuth);
    g.addDependency(trigger, check, EdgeKind::Data);
    g.addDependency(check, squash, EdgeKind::Control);
    for (const std::string &label : source_labels) {
        const NodeId access = g.addOperation(
            label, NodeRole::SecretAccess, AttackStep::Access);
        g.addDependency(trigger, access, EdgeKind::Data);
        g.addDependency(access, ch.use, EdgeKind::Data);
    }
    return g;
}

/** Source labels for the Fig. 4 style multi-source graphs. */
std::string
sourceLabel(SecretSource source)
{
    switch (source) {
      case Memory: return "Read S from memory";
      case Cache: return "Read S from cache";
      case LineFillBuffer: return "Read S from line fill buffer";
      case StoreBuffer: return "Read S from store buffer";
      case LoadPort: return "Read S from load port";
      case SystemRegister: return "Read S from special register";
      case FpuRegister: return "Read S from FPU";
      case StaleMemory: return "Read stale data S";
      case AddressMapping: return "Observe address-dependent timing";
    }
    return "Read S";
}

} // anonymous namespace

const VariantInfo &
variantInfo(AttackVariant variant)
{
    for (const VariantInfo &info : kVariantTable) {
        if (info.variant == variant)
            return info;
    }
    throw std::invalid_argument("variantInfo: unknown variant");
}

const std::vector<AttackVariant> &
allVariants()
{
    static const std::vector<AttackVariant> all = [] {
        std::vector<AttackVariant> v;
        for (const VariantInfo &info : kVariantTable)
            v.push_back(info.variant);
        return v;
    }();
    return all;
}

std::optional<AttackVariant>
findVariantByName(const std::string &name)
{
    const auto fold = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
        }
        return out;
    };
    // Short spellings matching the AttackVariant enumerators, for
    // CLI use where the catalog names are unwieldy.
    static const std::pair<const char *, AttackVariant> kShort[] = {
        {"SpectreV1", AttackVariant::SpectreV1},
        {"SpectreV1_1", AttackVariant::SpectreV1_1},
        {"SpectreV1_2", AttackVariant::SpectreV1_2},
        {"SpectreV2", AttackVariant::SpectreV2},
        {"Meltdown", AttackVariant::Meltdown},
        {"MeltdownV3a", AttackVariant::MeltdownV3a},
        {"SpectreV4", AttackVariant::SpectreV4},
        {"SpectreRsb", AttackVariant::SpectreRsb},
        {"Foreshadow", AttackVariant::Foreshadow},
        {"ForeshadowOs", AttackVariant::ForeshadowOs},
        {"ForeshadowVmm", AttackVariant::ForeshadowVmm},
        {"LazyFp", AttackVariant::LazyFp},
        {"Spoiler", AttackVariant::Spoiler},
        {"Ridl", AttackVariant::Ridl},
        {"ZombieLoad", AttackVariant::ZombieLoad},
        {"Fallout", AttackVariant::Fallout},
        {"Lvi", AttackVariant::Lvi},
        {"Taa", AttackVariant::Taa},
        {"Cacheout", AttackVariant::Cacheout},
    };
    const std::string wanted = fold(name);
    for (const auto &[spelling, variant] : kShort) {
        if (fold(spelling) == wanted)
            return variant;
    }
    for (const VariantInfo &info : kVariantTable) {
        if (fold(info.name) == wanted)
            return info.variant;
    }
    return std::nullopt;
}

std::vector<AttackVariant>
tableIIIVariants()
{
    std::vector<AttackVariant> v;
    for (const VariantInfo &info : kVariantTable) {
        if (info.inTableIII)
            v.push_back(info.variant);
    }
    return v;
}

std::vector<AttackVariant>
tableIVariants()
{
    std::vector<AttackVariant> v;
    for (const VariantInfo &info : kVariantTable) {
        if (info.inTableI)
            v.push_back(info.variant);
    }
    return v;
}

AttackGraph
buildAttackGraph(AttackVariant variant, CovertChannelKind channel)
{
    const VariantInfo &info = variantInfo(variant);
    switch (variant) {
      case SpectreV1:
        return buildPredictionGraph(
            info, channel, "Mistrain branch predictor",
            "Conditional branch instruction (bounds check)");
      case SpectreV1_1:
        return buildPredictionGraph(
            info, channel, "Mistrain branch predictor",
            "Conditional branch instruction (bounds check)");
      case SpectreV1_2:
        return buildPredictionGraph(
            info, channel, "Mistrain branch predictor",
            "Speculated store instruction (read-only page)");
      case SpectreV2:
        return buildPredictionGraph(
            info, channel, "Mistrain BTB (branch target injection)",
            "Indirect branch instruction");
      case SpectreRsb:
        return buildPredictionGraph(
            info, channel, "Underfill / poison return stack buffer",
            "Return instruction");
      case Meltdown:
        return buildFaultingAccessGraph(
            info, channel, "Load instruction (kernel address)",
            {info.illegalAccess}, "Load exception: squash pipeline");
      case MeltdownV3a:
        return buildFaultingAccessGraph(
            info, channel, "RDMSR instruction",
            {info.illegalAccess},
            "Privilege exception: squash pipeline");
      case LazyFp: {
        AttackGraph g = buildFaultingAccessGraph(
            info, channel, "First FP instruction after context switch",
            {info.illegalAccess}, "FPU fault: squash pipeline");
        const NodeId lazy = g.addOperation(
            "Context switch without FPU state save", NodeRole::Setup,
            AttackStep::Setup);
        const auto trigger = g.nodesWithRole(NodeRole::Trigger);
        g.addDependency(lazy, trigger.front(), EdgeKind::Resource);
        return g;
      }
      case Foreshadow:
      case ForeshadowOs:
      case ForeshadowVmm:
        return buildFaultingAccessGraph(
            info, channel,
            "Load instruction (PTE not present / reserved bits)",
            {info.illegalAccess}, "Terminal fault: squash pipeline");
      case Ridl:
      case ZombieLoad:
      case Fallout: {
        std::vector<std::string> labels;
        for (SecretSource s : info.sources)
            labels.push_back(sourceLabel(s));
        return buildFaultingAccessGraph(
            info, channel, "Faulting load instruction", labels,
            "Load exception: squash pipeline");
      }
      case Taa:
      case Cacheout: {
        std::vector<std::string> labels;
        for (SecretSource s : info.sources)
            labels.push_back(sourceLabel(s));
        return buildFaultingAccessGraph(
            info, channel,
            "TSX transaction load (asynchronous abort)", labels,
            "Transaction abort: roll back");
      }
      case SpectreV4: {
        AttackGraph g;
        g.setName(info.name);
        const ChannelNodes ch = addChannel(g, channel);
        const NodeId store = g.addOperation(
            "Store: overwrite stale secret S at address A",
            NodeRole::Other, AttackStep::DelayedAuth);
        const NodeId load = g.addOperation(
            "Load instruction (address A)", NodeRole::Trigger,
            AttackStep::DelayedAuth);
        const NodeId disamb = g.addOperation(
            info.authorization, NodeRole::Authorization,
            AttackStep::DelayedAuth);
        const NodeId access = g.addOperation(
            info.illegalAccess, NodeRole::SecretAccess,
            AttackStep::Access);
        const NodeId squash = g.addOperation(
            "Squash or commit", NodeRole::Squash,
            AttackStep::DelayedAuth);
        g.addDependency(store, disamb, EdgeKind::Address);
        g.addDependency(load, disamb, EdgeKind::Address);
        g.addDependency(load, access, EdgeKind::Data);
        g.addDependency(access, ch.use, EdgeKind::Data);
        g.addDependency(disamb, squash, EdgeKind::Control);
        return g;
      }
      case Lvi: {
        AttackGraph g;
        g.setName(info.name);
        const ChannelNodes ch = addChannel(g, channel);
        const NodeId plant = g.addOperation(
            "Place malicious value M in hardware buffers",
            NodeRole::Setup, AttackStep::Setup);
        const NodeId load = g.addOperation(
            "Victim faulting load instruction", NodeRole::Trigger,
            AttackStep::DelayedAuth);
        const NodeId check = g.addOperation(
            info.authorization, NodeRole::Authorization,
            AttackStep::DelayedAuth);
        const NodeId squash = g.addOperation(
            "Load exception: squash pipeline", NodeRole::Squash,
            AttackStep::DelayedAuth);
        g.addDependency(load, check, EdgeKind::Data);
        g.addDependency(check, squash, EdgeKind::Control);
        const NodeId divert = g.addOperation(
            "Victim's control or data flow diverted by M",
            NodeRole::Use, AttackStep::Access);
        for (SecretSource s : info.sources) {
            const std::string label =
                "Read M from " + std::string(secretSourceName(s));
            const NodeId read_m = g.addOperation(
                label, NodeRole::SecretAccess, AttackStep::Access);
            g.addDependency(plant, read_m, EdgeKind::Resource);
            g.addDependency(load, read_m, EdgeKind::Data);
            g.addDependency(read_m, divert, EdgeKind::Data);
        }
        const NodeId load_s = g.addOperation(
            "Load S (victim secret at attacker-chosen location)",
            NodeRole::SecretAccess, AttackStep::Access);
        g.addDependency(divert, load_s, EdgeKind::Data);
        g.addDependency(load_s, ch.use, EdgeKind::Data);
        return g;
      }
      case Spoiler: {
        AttackGraph g;
        g.setName(info.name);
        const NodeId stores = g.addOperation(
            "Repeated stores with 1MB-aliased addresses",
            NodeRole::Other, AttackStep::Setup);
        const NodeId load = g.addOperation(
            "Load instruction (aliased address)", NodeRole::Trigger,
            AttackStep::DelayedAuth);
        const NodeId disamb = g.addOperation(
            info.authorization, NodeRole::Authorization,
            AttackStep::DelayedAuth);
        const NodeId probe = g.addOperation(
            info.illegalAccess, NodeRole::SecretAccess,
            AttackStep::Access);
        const NodeId stall = g.addOperation(
            "Store-buffer dependency stall (timing state change)",
            NodeRole::Send, AttackStep::UseSend);
        const NodeId measure = g.addOperation(
            "Measure load latency", NodeRole::Receive,
            AttackStep::Receive);
        g.addDependency(stores, disamb, EdgeKind::Address);
        g.addDependency(load, disamb, EdgeKind::Address);
        g.addDependency(load, probe, EdgeKind::Data);
        g.addDependency(probe, stall, EdgeKind::Data);
        g.addDependency(stall, measure, EdgeKind::Data);
        return g;
      }
    }
    throw std::invalid_argument("buildAttackGraph: unknown variant");
}

AttackGraph
buildFigure4Graph(CovertChannelKind channel)
{
    VariantInfo info = variantInfo(AttackVariant::Meltdown);
    info.name = "Meltdown/Foreshadow/MDS (Fig. 4)";
    std::vector<std::string> labels = {
        sourceLabel(Memory), sourceLabel(Cache), sourceLabel(LoadPort),
        sourceLabel(LineFillBuffer), sourceLabel(StoreBuffer)};
    AttackGraph g = buildFaultingAccessGraph(
        info, channel, "Load instruction", labels,
        "Load exception: squash pipeline");
    g.setName("Meltdown/Foreshadow/MDS (Fig. 4)");
    return g;
}

} // namespace specsec::core
