#include "variants.hh"

#include <stdexcept>
#include <string>

#include "catalog.hh"

namespace specsec::core
{

const char *
secretSourceName(SecretSource source)
{
    switch (source) {
      case SecretSource::Memory: return "memory";
      case SecretSource::Cache: return "cache";
      case SecretSource::LineFillBuffer: return "line-fill-buffer";
      case SecretSource::StoreBuffer: return "store-buffer";
      case SecretSource::LoadPort: return "load-port";
      case SecretSource::SystemRegister: return "system-register";
      case SecretSource::FpuRegister: return "fpu-register";
      case SecretSource::StaleMemory: return "stale-memory";
      case SecretSource::AddressMapping: return "address-mapping";
    }
    return "unknown";
}

const char *
covertChannelName(CovertChannelKind kind)
{
    switch (kind) {
      case CovertChannelKind::FlushReload: return "flush-reload";
      case CovertChannelKind::PrimeProbe: return "prime-probe";
    }
    return "unknown";
}

namespace
{

using enum AttackVariant;
using enum AttackClass;
using enum SecretSource;

const std::vector<VariantInfo> kVariantTable = {
    {SpectreV1, "Spectre v1", "CVE-2017-5753",
     "Boundary check bypass",
     "Boundary-check branch resolution",
     "Read out-of-bounds memory",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {SpectreV1_1, "Spectre v1.1", "CVE-2018-3693",
     "Speculative buffer overflow",
     "Boundary-check branch resolution",
     "Write out-of-bounds memory",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {SpectreV1_2, "Spectre v1.2", "N/A",
     "Overwrite read-only memory",
     "Page read-only bit check",
     "Write read-only memory",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {SpectreV2, "Spectre v2", "CVE-2017-5715",
     "Branch target injection",
     "Indirect branch target resolution",
     "Execute code not intended to be executed",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {Meltdown, "Meltdown (Spectre v3)", "CVE-2017-5754",
     "Kernel content leakage to unprivileged attacker",
     "Kernel privilege check",
     "Read from kernel memory",
     MeltdownType, "Fig. 3", {Memory},
     false, true, true, true},
    {MeltdownV3a, "Meltdown variant 1 (Spectre v3a)", "CVE-2018-3640",
     "System register value leakage to unprivileged attacker",
     "RDMSR instruction privilege check",
     "Read system register",
     MeltdownType, "Fig. 5", {SystemRegister},
     false, true, true, true},
    {SpectreV4, "Spectre v4", "CVE-2018-3639",
     "Speculative store bypass, read stale data in memory",
     "Store-load address dependency resolution",
     "Read stale data",
     SpectreType, "Fig. 6", {StaleMemory},
     false, true, true, true},
    {SpectreRsb, "Spectre RSB", "CVE-2018-15572",
     "Return mis-predict, execute wrong code",
     "Return target resolution",
     "Execute code not intended to be executed",
     SpectreType, "Fig. 1", {Memory},
     true, false, true, true},
    {Foreshadow, "Foreshadow (L1 Terminal Fault)", "CVE-2018-3615",
     "SGX enclave memory leakage",
     "Page permission check",
     "Read enclave data in L1 cache from outside enclave",
     MeltdownType, "Fig. 4", {Cache},
     false, true, true, true},
    {ForeshadowOs, "Foreshadow-OS", "CVE-2018-3620",
     "OS memory leakage",
     "Page permission check",
     "Read kernel data in cache",
     MeltdownType, "Fig. 4", {Cache},
     false, true, true, true},
    {ForeshadowVmm, "Foreshadow-VMM", "CVE-2018-3646",
     "VMM memory leakage",
     "Page permission check",
     "Read VMM data in cache",
     MeltdownType, "Fig. 4", {Cache},
     false, true, true, true},
    {LazyFp, "Lazy FP", "CVE-2018-3665",
     "Leak of FPU state",
     "FPU owner check",
     "Read stale FPU state",
     MeltdownType, "Fig. 5", {FpuRegister},
     false, true, true, true},
    {Spoiler, "Spoiler", "CVE-2019-0162",
     "Virtual-to-physical address mapping leakage",
     "Store-load address dependency resolution (partial match)",
     "Observe address-dependent store-buffer timing",
     SpectreType, "-", {AddressMapping},
     false, true, true, false},
    {Ridl, "RIDL", "CVE-2018-12126/12127",
     "In-flight data leakage across privilege boundaries",
     "Load fault check",
     "Forward data from fill buffer and load port",
     MeltdownType, "Fig. 4", {LineFillBuffer, LoadPort},
     false, true, false, true},
    {ZombieLoad, "ZombieLoad", "CVE-2018-12130",
     "Cross-privilege-boundary data sampling",
     "Load fault check",
     "Forward data from fill buffer",
     MeltdownType, "Fig. 4", {LineFillBuffer},
     false, true, false, true},
    {Fallout, "Fallout", "CVE-2018-12126",
     "Leaking data on Meltdown-resistant CPUs",
     "Load fault check",
     "Forward data from store buffer",
     MeltdownType, "Fig. 4", {StoreBuffer},
     false, true, false, true},
    {Lvi, "LVI", "CVE-2020-0551",
     "Load value injection into victim transient execution",
     "Load fault check",
     "Forward data from micro-architectural buffers (L1D cache, load "
     "port, store buffer and line fill buffer)",
     MeltdownType, "Fig. 7",
     {Cache, LoadPort, StoreBuffer, LineFillBuffer},
     false, true, false, true},
    {Taa, "TAA", "CVE-2019-11135",
     "TSX asynchronous abort data leakage",
     "TSX Asynchronous Abort Completion",
     "Load data from L1D cache, store or load buffers",
     MeltdownType, "Fig. 4", {Cache, StoreBuffer, LoadPort},
     false, true, false, true},
    {Cacheout, "CacheOut", "CVE-2020-0549",
     "Leaking data on Intel CPUs via cache evictions",
     "TSX Asynchronous Abort Completion",
     "Forward data from fill buffer",
     MeltdownType, "Fig. 4", {LineFillBuffer},
     false, true, false, true},
};

} // anonymous namespace

ChannelNodes
addChannel(AttackGraph &g, CovertChannelKind kind)
{
    ChannelNodes ch;
    if (kind == CovertChannelKind::FlushReload) {
        ch.setup = g.addOperation("Flush Array_A (clflush)",
                                  NodeRole::Setup, AttackStep::Setup);
        ch.use = g.addOperation("Compute load address R from secret",
                                NodeRole::Use, AttackStep::UseSend);
        ch.send = g.addOperation("Load R to cache",
                                 NodeRole::Send, AttackStep::UseSend);
        ch.receive = g.addOperation("Reload Array_A",
                                    NodeRole::Receive,
                                    AttackStep::Receive);
        ch.measure = g.addOperation("Measure access time",
                                    NodeRole::Receive,
                                    AttackStep::Receive);
    } else {
        ch.setup = g.addOperation("Prime cache sets with attacker data",
                                  NodeRole::Setup, AttackStep::Setup);
        ch.use = g.addOperation("Compute load address R from secret",
                                NodeRole::Use, AttackStep::UseSend);
        ch.send = g.addOperation("Load R: evict attacker line",
                                 NodeRole::Send, AttackStep::UseSend);
        ch.receive = g.addOperation("Probe cache sets",
                                    NodeRole::Receive,
                                    AttackStep::Receive);
        ch.measure = g.addOperation("Measure access time",
                                    NodeRole::Receive,
                                    AttackStep::Receive);
    }
    g.addDependency(ch.use, ch.send, EdgeKind::Address);
    g.addDependency(ch.setup, ch.send, EdgeKind::Resource);
    g.addDependency(ch.send, ch.receive, EdgeKind::Resource);
    g.addDependency(ch.receive, ch.measure, EdgeKind::Data);
    return ch;
}

AttackGraph
buildPredictionGraph(const VariantInfo &info, CovertChannelKind kind,
                     const char *mistrain_label,
                     const char *trigger_label)
{
    AttackGraph g;
    g.setName(info.name);
    const ChannelNodes ch = addChannel(g, kind);
    NodeId mistrain = graph::kInvalidNode;
    if (info.requiresMistraining) {
        mistrain = g.addOperation(mistrain_label,
                                  NodeRole::MistrainPredictor,
                                  AttackStep::Setup);
    }
    const NodeId trigger = g.addOperation(
        trigger_label, NodeRole::Trigger, AttackStep::DelayedAuth);
    const NodeId resolve = g.addOperation(
        info.authorization, NodeRole::Authorization,
        AttackStep::DelayedAuth);
    const NodeId access = g.addOperation(
        info.illegalAccess, NodeRole::SecretAccess, AttackStep::Access);
    const NodeId squash = g.addOperation(
        "Squash or commit", NodeRole::Squash, AttackStep::DelayedAuth);

    if (mistrain != graph::kInvalidNode)
        g.addDependency(mistrain, trigger, EdgeKind::Resource);
    g.addDependency(trigger, resolve, EdgeKind::Data);
    g.addDependency(trigger, access, EdgeKind::Control);
    g.addDependency(access, ch.use, EdgeKind::Data);
    g.addDependency(resolve, squash, EdgeKind::Control);
    return g;
}

AttackGraph
buildFaultingAccessGraph(const VariantInfo &info, CovertChannelKind kind,
                         const char *trigger_label,
                         const std::vector<std::string> &source_labels,
                         const char *squash_label)
{
    AttackGraph g;
    g.setName(info.name);
    const ChannelNodes ch = addChannel(g, kind);
    const NodeId trigger = g.addOperation(
        trigger_label, NodeRole::Trigger, AttackStep::DelayedAuth);
    const NodeId check = g.addOperation(
        info.authorization, NodeRole::Authorization,
        AttackStep::DelayedAuth);
    const NodeId squash = g.addOperation(
        squash_label, NodeRole::Squash, AttackStep::DelayedAuth);
    g.addDependency(trigger, check, EdgeKind::Data);
    g.addDependency(check, squash, EdgeKind::Control);
    for (const std::string &label : source_labels) {
        const NodeId access = g.addOperation(
            label, NodeRole::SecretAccess, AttackStep::Access);
        g.addDependency(trigger, access, EdgeKind::Data);
        g.addDependency(access, ch.use, EdgeKind::Data);
    }
    return g;
}

std::string
secretSourceAccessLabel(SecretSource source)
{
    switch (source) {
      case Memory: return "Read S from memory";
      case Cache: return "Read S from cache";
      case LineFillBuffer: return "Read S from line fill buffer";
      case StoreBuffer: return "Read S from store buffer";
      case LoadPort: return "Read S from load port";
      case SystemRegister: return "Read S from special register";
      case FpuRegister: return "Read S from FPU";
      case StaleMemory: return "Read stale data S";
      case AddressMapping: return "Observe address-dependent timing";
    }
    return "Read S";
}

const VariantInfo &
variantInfo(AttackVariant variant)
{
    for (const VariantInfo &info : kVariantTable) {
        if (info.variant == variant)
            return info;
    }
    throw std::invalid_argument("variantInfo: unknown variant");
}

const std::vector<AttackVariant> &
allVariants()
{
    static const std::vector<AttackVariant> all = [] {
        std::vector<AttackVariant> v;
        for (const VariantInfo &info : kVariantTable)
            v.push_back(info.variant);
        return v;
    }();
    return all;
}

std::optional<AttackVariant>
findVariantByName(const std::string &name)
{
    const AttackDescriptor *descriptor =
        ScenarioCatalog::instance().findAttack(name);
    if (descriptor == nullptr || !descriptor->variant)
        return std::nullopt;
    return *descriptor->variant;
}

std::vector<AttackVariant>
tableIIIVariants()
{
    std::vector<AttackVariant> v;
    for (const VariantInfo &info : kVariantTable) {
        if (info.inTableIII)
            v.push_back(info.variant);
    }
    return v;
}

std::vector<AttackVariant>
tableIVariants()
{
    std::vector<AttackVariant> v;
    for (const VariantInfo &info : kVariantTable) {
        if (info.inTableI)
            v.push_back(info.variant);
    }
    return v;
}

AttackGraph
buildAttackGraph(AttackVariant variant, CovertChannelKind channel)
{
    const AttackDescriptor *descriptor =
        ScenarioCatalog::instance().findAttack(variant);
    if (descriptor == nullptr || !descriptor->buildGraph)
        throw std::invalid_argument(
            "buildAttackGraph: unknown variant");
    return descriptor->buildGraph(channel);
}

AttackGraph
buildFigure4Graph(CovertChannelKind channel)
{
    VariantInfo info = variantInfo(AttackVariant::Meltdown);
    info.name = "Meltdown/Foreshadow/MDS (Fig. 4)";
    std::vector<std::string> labels = {
        secretSourceAccessLabel(Memory),
        secretSourceAccessLabel(Cache),
        secretSourceAccessLabel(LoadPort),
        secretSourceAccessLabel(LineFillBuffer),
        secretSourceAccessLabel(StoreBuffer)};
    AttackGraph g = buildFaultingAccessGraph(
        info, channel, "Load instruction", labels,
        "Load exception: squash pipeline");
    g.setName("Meltdown/Foreshadow/MDS (Fig. 4)");
    return g;
}

} // namespace specsec::core
