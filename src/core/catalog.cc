#include "catalog.hh"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <unordered_set>

namespace specsec::core
{

const char *
attackClassName(AttackClass klass)
{
    switch (klass) {
      case AttackClass::SpectreType: return "spectre-type";
      case AttackClass::MeltdownType: return "meltdown-type";
    }
    return "unknown";
}

const char *
modelVerdictName(ModelVerdict verdict)
{
    switch (verdict) {
      case ModelVerdict::Leak: return "leak";
      case ModelVerdict::Blocked: return "blocked";
      case ModelVerdict::Inapplicable: return "inapplicable";
      case ModelVerdict::Undecided: return "undecided";
    }
    return "unknown";
}

void
MitigationToggles::applyTo(attacks::AttackOptions &options) const
{
    options.kpti |= kpti;
    options.rsbStuffing |= rsbStuffing;
    options.softwareLfence |= softwareLfence;
    options.addressMasking |= addressMasking;
    options.flushL1OnExit |= flushL1OnExit;
}

std::string
foldName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

namespace
{

/** Classic Levenshtein distance (names are short; O(nm) is fine). */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
        }
    }
    return row[b.size()];
}

/**
 * The distinct folded keys of a descriptor's canonical name plus
 * aliases.  Different spellings often fold onto one key ("LFENCE"
 * and "lfence"); only collisions *across* descriptors are errors.
 */
std::vector<std::string>
foldedKeys(const std::string &name,
           const std::vector<std::string> &aliases)
{
    std::vector<std::string> keys;
    std::unordered_set<std::string> seen;
    const auto add = [&](const std::string &spelling) {
        std::string key = foldName(spelling);
        if (key.empty()) {
            throw std::invalid_argument(
                "catalog: name '" + spelling +
                "' folds to the empty string");
        }
        if (seen.insert(key).second)
            keys.push_back(std::move(key));
    };
    add(name);
    for (const std::string &alias : aliases)
        add(alias);
    return keys;
}

} // anonymous namespace

std::vector<std::string>
suggestNames(const std::vector<std::string> &candidates,
             const std::string &query, std::size_t max)
{
    const std::string folded = foldName(query);
    const std::size_t budget =
        std::max<std::size_t>(2, folded.size() / 3);
    std::vector<std::pair<std::size_t, std::string>> scored;
    for (const std::string &candidate : candidates) {
        const std::size_t d =
            editDistance(folded, foldName(candidate));
        if (d <= budget)
            scored.emplace_back(d, candidate);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<std::string> out;
    for (const auto &[d, candidate] : scored) {
        if (out.size() >= max)
            break;
        if (std::find(out.begin(), out.end(), candidate) ==
            out.end())
            out.push_back(candidate);
    }
    return out;
}

std::string
unknownNameMessage(const std::string &kind, const std::string &name,
                   const std::vector<std::string> &suggestions)
{
    std::string out = "unknown " + kind + " '" + name + "'";
    if (!suggestions.empty()) {
        out += " (did you mean: ";
        for (std::size_t i = 0; i < suggestions.size(); ++i) {
            if (i)
                out += ", ";
            out += suggestions[i];
        }
        out += "?)";
    }
    return out;
}

ScenarioCatalog &
ScenarioCatalog::instance()
{
    static ScenarioCatalog catalog;
    static std::once_flag once;
    std::call_once(once, [] {
        detail::registerBuiltinAttacks(catalog);
        detail::registerBuiltinDefenses(catalog);
        detail::registerBuiltinMitigations(catalog);
    });
    return catalog;
}

const AttackDescriptor &
ScenarioCatalog::registerAttack(AttackDescriptor descriptor)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::vector<std::string> keys =
        foldedKeys(descriptor.name, descriptor.aliases);
    for (const std::string &key : keys) {
        if (const auto it = attackByName_.find(key);
            it != attackByName_.end()) {
            throw std::invalid_argument(
                "catalog: attack '" + descriptor.name +
                "' collides with registered attack '" +
                it->second->name + "' on name '" + key + "'");
        }
    }
    if (descriptor.variant) {
        descriptor.id = *descriptor.variant;
    } else {
        if (nextExtensionId_ == 0) // wrapped: 256 - 64 slots used up
            throw std::invalid_argument(
                "catalog: attack extension id space exhausted");
        descriptor.id = static_cast<AttackVariant>(nextExtensionId_++);
    }
    const std::uint8_t slot =
        static_cast<std::uint8_t>(descriptor.id);
    if (attackById_.count(slot)) {
        throw std::invalid_argument(
            "catalog: attack '" + descriptor.name +
            "' reuses an occupied variant slot");
    }

    attacks_.push_back(
        std::make_unique<AttackDescriptor>(std::move(descriptor)));
    const AttackDescriptor *stored = attacks_.back().get();
    for (const std::string &key : keys)
        attackByName_.emplace(key, stored);
    attackById_.emplace(slot, stored);
    return *stored;
}

const AttackDescriptor *
ScenarioCatalog::findAttack(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = attackByName_.find(foldName(name));
    return it == attackByName_.end() ? nullptr : it->second;
}

const AttackDescriptor *
ScenarioCatalog::findAttack(AttackVariant id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        attackById_.find(static_cast<std::uint8_t>(id));
    return it == attackById_.end() ? nullptr : it->second;
}

std::vector<const AttackDescriptor *>
ScenarioCatalog::attacks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const AttackDescriptor *> out;
    out.reserve(attacks_.size());
    for (const auto &d : attacks_)
        out.push_back(d.get());
    return out;
}

std::vector<std::string>
ScenarioCatalog::attackSuggestions(const std::string &name,
                                   std::size_t max) const
{
    std::vector<std::string> candidates;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &d : attacks_) {
            candidates.push_back(d->name);
            for (const std::string &alias : d->aliases)
                candidates.push_back(alias);
        }
    }
    return suggestNames(candidates, name, max);
}

const DefenseDescriptor &
ScenarioCatalog::registerDefense(DefenseDescriptor descriptor)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::vector<std::string> keys =
        foldedKeys(descriptor.info.name, descriptor.aliases);
    for (const std::string &key : keys) {
        if (const auto it = defenseByName_.find(key);
            it != defenseByName_.end()) {
            throw std::invalid_argument(
                "catalog: defense '" +
                std::string(descriptor.info.name) +
                "' collides with registered defense '" +
                it->second->info.name + "' on name '" + key + "'");
        }
    }
    if (descriptor.mechanism &&
        defenseByMechanism_.count(
            static_cast<std::uint8_t>(*descriptor.mechanism))) {
        throw std::invalid_argument(
            "catalog: defense '" + std::string(descriptor.info.name) +
            "' reuses an occupied mechanism slot");
    }

    defenses_.push_back(
        std::make_unique<DefenseDescriptor>(std::move(descriptor)));
    const DefenseDescriptor *stored = defenses_.back().get();
    for (const std::string &key : keys)
        defenseByName_.emplace(key, stored);
    if (stored->mechanism)
        defenseByMechanism_.emplace(
            static_cast<std::uint8_t>(*stored->mechanism), stored);
    return *stored;
}

const DefenseDescriptor *
ScenarioCatalog::findDefense(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = defenseByName_.find(foldName(name));
    return it == defenseByName_.end() ? nullptr : it->second;
}

const DefenseDescriptor *
ScenarioCatalog::findDefense(DefenseMechanism mechanism) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = defenseByMechanism_.find(
        static_cast<std::uint8_t>(mechanism));
    return it == defenseByMechanism_.end() ? nullptr : it->second;
}

std::vector<const DefenseDescriptor *>
ScenarioCatalog::defenses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const DefenseDescriptor *> out;
    out.reserve(defenses_.size());
    for (const auto &d : defenses_)
        out.push_back(d.get());
    return out;
}

std::vector<std::string>
ScenarioCatalog::defenseSuggestions(const std::string &name,
                                    std::size_t max) const
{
    std::vector<std::string> candidates;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &d : defenses_) {
            candidates.push_back(d->info.name);
            for (const std::string &alias : d->aliases)
                candidates.push_back(alias);
        }
    }
    return suggestNames(candidates, name, max);
}

const MitigationDescriptor &
ScenarioCatalog::registerMitigation(MitigationDescriptor descriptor)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::vector<std::string> keys =
        foldedKeys(descriptor.name, descriptor.aliases);
    for (const std::string &key : keys) {
        if (const auto it = mitigationByName_.find(key);
            it != mitigationByName_.end()) {
            throw std::invalid_argument(
                "catalog: mitigation '" + descriptor.name +
                "' collides with registered mitigation '" +
                it->second->name + "' on name '" + key + "'");
        }
    }
    mitigations_.push_back(std::make_unique<MitigationDescriptor>(
        std::move(descriptor)));
    const MitigationDescriptor *stored = mitigations_.back().get();
    for (const std::string &key : keys)
        mitigationByName_.emplace(key, stored);
    return *stored;
}

const MitigationDescriptor *
ScenarioCatalog::findMitigation(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = mitigationByName_.find(foldName(name));
    return it == mitigationByName_.end() ? nullptr : it->second;
}

std::vector<const MitigationDescriptor *>
ScenarioCatalog::mitigations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const MitigationDescriptor *> out;
    out.reserve(mitigations_.size());
    for (const auto &d : mitigations_)
        out.push_back(d.get());
    return out;
}

std::vector<std::string>
ScenarioCatalog::mitigationSuggestions(const std::string &name,
                                       std::size_t max) const
{
    std::vector<std::string> candidates;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &d : mitigations_) {
            candidates.push_back(d->name);
            for (const std::string &alias : d->aliases)
                candidates.push_back(alias);
        }
    }
    return suggestNames(candidates, name, max);
}

} // namespace specsec::core
