/**
 * @file
 * Attack-variant metadata (Tables I and III) and the reusable attack
 * graph shapes (Figs. 1, 3, 4, 5, 6, 7) for the speculative
 * execution attacks the paper models.
 *
 * Per-variant dispatch lives in the ScenarioCatalog (catalog.hh):
 * each variant's AttackDescriptor binds this metadata to its graph
 * builder and runner (registered in attacks/builtin_attacks.cc), and
 * buildAttackGraph()/findVariantByName() here are thin catalog
 * lookups kept for enum-addressed callers.
 */

#ifndef SPECSEC_CORE_VARIANTS_HH
#define SPECSEC_CORE_VARIANTS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attack_graph.hh"

namespace specsec::core
{

/** Every attack variant the paper catalogs. */
enum class AttackVariant : std::uint8_t
{
    SpectreV1,
    SpectreV1_1,
    SpectreV1_2,
    SpectreV2,
    Meltdown,
    MeltdownV3a,
    SpectreV4,
    SpectreRsb,
    Foreshadow,
    ForeshadowOs,
    ForeshadowVmm,
    LazyFp,
    Spoiler,
    Ridl,
    ZombieLoad,
    Fallout,
    Lvi,
    Taa,
    Cacheout,
};

/**
 * The paper's structural split (insight 6): Spectre-type attacks are
 * triggered by mispredictions and can be modeled at the instruction
 * level; Meltdown-type attacks have authorization and access inside
 * the same instruction and require intra-instruction (micro-op)
 * modeling.
 */
enum class AttackClass : std::uint8_t
{
    SpectreType,
    MeltdownType,
};

/** Where the illegally accessed secret comes from (Figs. 4, 5). */
enum class SecretSource : std::uint8_t
{
    Memory,
    Cache,
    LineFillBuffer,
    StoreBuffer,
    LoadPort,
    SystemRegister,
    FpuRegister,
    StaleMemory,
    AddressMapping, ///< Spoiler: physical-address bits via timing
};

/** @return stable human-readable source name. */
const char *secretSourceName(SecretSource source);

/** Static description of one attack variant (Tables I + III). */
struct VariantInfo
{
    AttackVariant variant;
    const char *name;
    const char *cve;
    const char *impact;        ///< Table I "Impact" column
    const char *authorization; ///< Table III "Authorization" column
    const char *illegalAccess; ///< Table III "Illegal Access" column
    AttackClass klass;
    const char *figure; ///< which paper figure models it
    std::vector<SecretSource> sources;
    bool requiresMistraining;  ///< needs predictor steering (step 1b)
    bool intraInstruction;     ///< needs micro-op level modeling
    bool inTableI;             ///< listed among the first 13 attacks
    bool inTableIII;           ///< has authorization/access entries
};

/** @return the static description of @p variant. */
const VariantInfo &variantInfo(AttackVariant variant);

/** @return every variant, in Table III order (plus Spoiler). */
const std::vector<AttackVariant> &allVariants();

/**
 * Case/punctuation-insensitive lookup of a variant by catalog name
 * (e.g. "spectre-v1", "Spectre v1", "zombieload"), for CLI drivers.
 * A thin wrapper over ScenarioCatalog::findAttack (catalog.hh) that
 * only reports attacks with an enum slot; prefer the catalog lookup
 * directly, which also resolves registered out-of-tree attacks.
 */
std::optional<AttackVariant> findVariantByName(const std::string &name);

/** @return the variants listed in Table III (18 entries). */
std::vector<AttackVariant> tableIIIVariants();

/** @return the variants listed in Table I (13 entries). */
std::vector<AttackVariant> tableIVariants();

/** Covert channel used for the send/receive half of the graph. */
enum class CovertChannelKind : std::uint8_t
{
    FlushReload,
    PrimeProbe,
};

/** @return stable human-readable channel name. */
const char *covertChannelName(CovertChannelKind kind);

/**
 * Build the attack graph for @p variant, reproducing the paper's
 * figure for that variant (see VariantInfo::figure).  The graph
 * carries the Table III authorization/access strings as the labels
 * of the authorization and secret-access nodes.
 *
 * Dispatches through the variant's AttackDescriptor::buildGraph hook
 * in the ScenarioCatalog (catalog.hh), so registered out-of-tree
 * attacks resolve here too.
 */
AttackGraph
buildAttackGraph(AttackVariant variant,
                 CovertChannelKind channel = CovertChannelKind::FlushReload);

/**
 * @name Graph-shape builders
 *
 * The two figure shapes every cataloged attack graph instantiates,
 * exposed so descriptor registrations (src/attacks/
 * builtin_attacks.cc) and out-of-tree attacks can compose their
 * AttackDescriptor::buildGraph hooks from the same pieces the
 * paper's figures use.  Bespoke shapes (Spectre v4, LVI, Spoiler)
 * build directly on AttackGraph.
 * @{
 */

/** Channel vertices shared by every attack graph. */
struct ChannelNodes
{
    NodeId setup = graph::kInvalidNode;   ///< flush / prime
    NodeId use = graph::kInvalidNode;     ///< compute load address R
    NodeId send = graph::kInvalidNode;    ///< load R to cache / evict
    NodeId receive = graph::kInvalidNode; ///< reload / probe
    NodeId measure = graph::kInvalidNode; ///< measure time
};

/**
 * Add the covert-channel half (steps 1a, 4, 5) of an attack graph:
 * setup -> ... -> send -> receive -> measure, with the "use" node
 * (compute R) ready to be fed by the variant's secret access.
 */
ChannelNodes addChannel(AttackGraph &g, CovertChannelKind kind);

/**
 * A Fig. 1-shaped graph: misprediction-triggered attack where the
 * authorization is the (delayed) resolution of a prediction.
 * Mistraining setup is added when info.requiresMistraining.
 */
AttackGraph buildPredictionGraph(const VariantInfo &info,
                                 CovertChannelKind channel,
                                 const char *mistrain_label,
                                 const char *trigger_label);

/**
 * A Fig. 3/4-shaped graph: a faulting access whose authorization
 * (permission/fault check) and secret access live in the same
 * instruction, possibly with several alternative sources.
 */
AttackGraph
buildFaultingAccessGraph(const VariantInfo &info,
                         CovertChannelKind channel,
                         const char *trigger_label,
                         const std::vector<std::string> &source_labels,
                         const char *squash_label);

/** The Fig. 4-style secret-access node label for @p source. */
std::string secretSourceAccessLabel(SecretSource source);

/// @}

/**
 * Build the combined Meltdown/Foreshadow/MDS graph of Fig. 4 with all
 * four-plus-one secret sources (memory, cache, load port, line fill
 * buffer, store buffer), used by the defense-placement study.
 */
AttackGraph
buildFigure4Graph(CovertChannelKind channel = CovertChannelKind::FlushReload);

} // namespace specsec::core

#endif // SPECSEC_CORE_VARIANTS_HH
