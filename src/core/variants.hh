/**
 * @file
 * The attack-variant catalog: metadata (Tables I and III) and attack
 * graph builders (Figs. 1, 3, 4, 5, 6, 7) for every speculative
 * execution attack the paper models.
 */

#ifndef SPECSEC_CORE_VARIANTS_HH
#define SPECSEC_CORE_VARIANTS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attack_graph.hh"

namespace specsec::core
{

/** Every attack variant the paper catalogs. */
enum class AttackVariant : std::uint8_t
{
    SpectreV1,
    SpectreV1_1,
    SpectreV1_2,
    SpectreV2,
    Meltdown,
    MeltdownV3a,
    SpectreV4,
    SpectreRsb,
    Foreshadow,
    ForeshadowOs,
    ForeshadowVmm,
    LazyFp,
    Spoiler,
    Ridl,
    ZombieLoad,
    Fallout,
    Lvi,
    Taa,
    Cacheout,
};

/**
 * The paper's structural split (insight 6): Spectre-type attacks are
 * triggered by mispredictions and can be modeled at the instruction
 * level; Meltdown-type attacks have authorization and access inside
 * the same instruction and require intra-instruction (micro-op)
 * modeling.
 */
enum class AttackClass : std::uint8_t
{
    SpectreType,
    MeltdownType,
};

/** Where the illegally accessed secret comes from (Figs. 4, 5). */
enum class SecretSource : std::uint8_t
{
    Memory,
    Cache,
    LineFillBuffer,
    StoreBuffer,
    LoadPort,
    SystemRegister,
    FpuRegister,
    StaleMemory,
    AddressMapping, ///< Spoiler: physical-address bits via timing
};

/** @return stable human-readable source name. */
const char *secretSourceName(SecretSource source);

/** Static description of one attack variant (Tables I + III). */
struct VariantInfo
{
    AttackVariant variant;
    const char *name;
    const char *cve;
    const char *impact;        ///< Table I "Impact" column
    const char *authorization; ///< Table III "Authorization" column
    const char *illegalAccess; ///< Table III "Illegal Access" column
    AttackClass klass;
    const char *figure; ///< which paper figure models it
    std::vector<SecretSource> sources;
    bool requiresMistraining;  ///< needs predictor steering (step 1b)
    bool intraInstruction;     ///< needs micro-op level modeling
    bool inTableI;             ///< listed among the first 13 attacks
    bool inTableIII;           ///< has authorization/access entries
};

/** @return the static description of @p variant. */
const VariantInfo &variantInfo(AttackVariant variant);

/** @return every variant, in Table III order (plus Spoiler). */
const std::vector<AttackVariant> &allVariants();

/**
 * Case/punctuation-insensitive lookup of a variant by catalog name
 * (e.g. "spectre-v1", "Spectre v1", "zombieload"), for CLI drivers.
 */
std::optional<AttackVariant> findVariantByName(const std::string &name);

/** @return the variants listed in Table III (18 entries). */
std::vector<AttackVariant> tableIIIVariants();

/** @return the variants listed in Table I (13 entries). */
std::vector<AttackVariant> tableIVariants();

/** Covert channel used for the send/receive half of the graph. */
enum class CovertChannelKind : std::uint8_t
{
    FlushReload,
    PrimeProbe,
};

/** @return stable human-readable channel name. */
const char *covertChannelName(CovertChannelKind kind);

/**
 * Build the attack graph for @p variant, reproducing the paper's
 * figure for that variant (see VariantInfo::figure).  The graph
 * carries the Table III authorization/access strings as the labels
 * of the authorization and secret-access nodes.
 */
AttackGraph
buildAttackGraph(AttackVariant variant,
                 CovertChannelKind channel = CovertChannelKind::FlushReload);

/**
 * Build the combined Meltdown/Foreshadow/MDS graph of Fig. 4 with all
 * four-plus-one secret sources (memory, cache, load port, line fill
 * buffer, store buffer), used by the defense-placement study.
 */
AttackGraph
buildFigure4Graph(CovertChannelKind channel = CovertChannelKind::FlushReload);

} // namespace specsec::core

#endif // SPECSEC_CORE_VARIANTS_HH
