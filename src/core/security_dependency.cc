#include "security_dependency.hh"

namespace specsec::core
{

const char *
defenseStrategyName(DefenseStrategy strategy)
{
    switch (strategy) {
      case DefenseStrategy::PreventAccess:
        return "1-prevent-access-before-authorization";
      case DefenseStrategy::PreventUse:
        return "2-prevent-use-before-authorization";
      case DefenseStrategy::PreventSend:
        return "3-prevent-send-before-authorization";
      case DefenseStrategy::ClearPredictions:
        return "4-clear-predictions";
    }
    return "unknown";
}

std::vector<DefenseStrategy>
allDefenseStrategies()
{
    return {DefenseStrategy::PreventAccess, DefenseStrategy::PreventUse,
            DefenseStrategy::PreventSend,
            DefenseStrategy::ClearPredictions};
}

namespace
{

/** Insert auth -> node security edges for every node of @p role. */
std::vector<graph::Edge>
protectRole(AttackGraph &g, NodeRole role)
{
    std::vector<graph::Edge> added;
    for (NodeId auth : g.authorizationNodes()) {
        for (NodeId target : g.nodesWithRole(role)) {
            if (!g.tsg().hasEdge(auth, target) &&
                g.addSecurityDependency(auth, target)) {
                added.push_back(
                    {auth, target, EdgeKind::Security});
            }
        }
    }
    return added;
}

/** Splice a PredictorFlush node into mistrain -> trigger edges. */
std::vector<graph::Edge>
clearPredictions(AttackGraph &g)
{
    std::vector<graph::Edge> added;
    const auto mistrains = g.nodesWithRole(NodeRole::MistrainPredictor);
    const auto triggers = g.nodesWithRole(NodeRole::Trigger);
    for (NodeId m : mistrains) {
        for (NodeId t : triggers) {
            if (!g.tsg().hasEdge(m, t))
                continue;
            g.tsg().removeEdge(m, t);
            const NodeId flush = g.addOperation(
                "Flush predictor state (context switch)",
                NodeRole::PredictorFlush, AttackStep::Setup);
            g.addDependency(m, flush, EdgeKind::Resource);
            g.addSecurityDependency(flush, t);
            added.push_back({flush, t, EdgeKind::Security});
        }
    }
    return added;
}

} // anonymous namespace

std::vector<graph::Edge>
applyDefense(AttackGraph &g, DefenseStrategy strategy)
{
    switch (strategy) {
      case DefenseStrategy::PreventAccess:
        return protectRole(g, NodeRole::SecretAccess);
      case DefenseStrategy::PreventUse:
        return protectRole(g, NodeRole::Use);
      case DefenseStrategy::PreventSend:
        return protectRole(g, NodeRole::Send);
      case DefenseStrategy::ClearPredictions:
        return clearPredictions(g);
    }
    return {};
}

bool
applyTargetedDependency(AttackGraph &g, NodeId authorization,
                        NodeId protected_op)
{
    return g.addSecurityDependency(authorization, protected_op);
}

bool
defenseBlocks(const AttackGraph &g, DefenseStrategy strategy)
{
    AttackGraph copy = g;
    const auto added = applyDefense(copy, strategy);
    if (added.empty())
        return false; // nothing to protect: the strategy is a no-op
    return !copy.isVulnerable();
}

} // namespace specsec::core
