#include "composer.hh"

#include <string>

namespace specsec::core
{

const char *
triggerKindName(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::ConditionalBranch:
        return "conditional-branch";
      case TriggerKind::IndirectBranch: return "indirect-branch";
      case TriggerKind::ReturnAddress: return "return-address";
      case TriggerKind::FaultingLoad: return "faulting-load";
      case TriggerKind::MsrRead: return "msr-read";
      case TriggerKind::FpAccess: return "fp-access";
      case TriggerKind::MemoryDisambiguation:
        return "memory-disambiguation";
      case TriggerKind::TsxAbort: return "tsx-abort";
    }
    return "unknown";
}

const std::vector<TriggerKind> &
allTriggerKinds()
{
    static const std::vector<TriggerKind> kinds = {
        TriggerKind::ConditionalBranch, TriggerKind::IndirectBranch,
        TriggerKind::ReturnAddress,     TriggerKind::FaultingLoad,
        TriggerKind::MsrRead,           TriggerKind::FpAccess,
        TriggerKind::MemoryDisambiguation, TriggerKind::TsxAbort,
    };
    return kinds;
}

const std::vector<SecretSource> &
composableSources()
{
    static const std::vector<SecretSource> sources = {
        SecretSource::Memory,        SecretSource::Cache,
        SecretSource::LineFillBuffer, SecretSource::StoreBuffer,
        SecretSource::LoadPort,      SecretSource::SystemRegister,
        SecretSource::FpuRegister,   SecretSource::StaleMemory,
    };
    return sources;
}

namespace
{

struct TriggerSpec
{
    const char *triggerLabel;
    const char *authLabel;
    const char *mistrainLabel; ///< nullptr when not prediction-based
    bool intraInstruction;
};

TriggerSpec
triggerSpec(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::ConditionalBranch:
        return {"Conditional branch instruction",
                "Branch resolution (bounds check)",
                "Mistrain branch predictor", false};
      case TriggerKind::IndirectBranch:
        return {"Indirect branch instruction",
                "Indirect branch target resolution",
                "Mistrain BTB", false};
      case TriggerKind::ReturnAddress:
        return {"Return instruction", "Return target resolution",
                "Underfill / poison RSB", false};
      case TriggerKind::FaultingLoad:
        return {"Load instruction", "Load permission/fault check",
                nullptr, true};
      case TriggerKind::MsrRead:
        return {"RDMSR instruction", "RDMSR privilege check",
                nullptr, true};
      case TriggerKind::FpAccess:
        return {"FP instruction after context switch",
                "FPU owner check", nullptr, true};
      case TriggerKind::MemoryDisambiguation:
        return {"Load instruction (aliasing a pending store)",
                "Store-load address dependency resolution", nullptr,
                true};
      case TriggerKind::TsxAbort:
        return {"TSX transaction access",
                "TSX asynchronous abort completion", nullptr, true};
    }
    return {"?", "?", nullptr, false};
}

std::string
accessLabel(SecretSource source)
{
    switch (source) {
      case SecretSource::Memory: return "Read S from memory";
      case SecretSource::Cache: return "Read S from cache";
      case SecretSource::LineFillBuffer:
        return "Read S from line fill buffer";
      case SecretSource::StoreBuffer:
        return "Read S from store buffer";
      case SecretSource::LoadPort: return "Read S from load port";
      case SecretSource::SystemRegister:
        return "Read S from special register";
      case SecretSource::FpuRegister: return "Read S from FPU";
      case SecretSource::StaleMemory: return "Read stale data S";
      case SecretSource::AddressMapping:
        return "Observe address-dependent timing";
    }
    return "Read S";
}

} // anonymous namespace

AttackGraph
composeAttack(const AttackRecipe &recipe)
{
    const TriggerSpec spec = triggerSpec(recipe.trigger);
    AttackGraph g;
    g.setName(std::string("composed: ") +
              triggerKindName(recipe.trigger) + " x " +
              secretSourceName(recipe.source) + " x " +
              covertChannelName(recipe.channel));

    // Channel half (steps 1a, 4, 5).
    const bool flush_reload =
        recipe.channel == CovertChannelKind::FlushReload;
    const NodeId setup = g.addOperation(
        flush_reload ? "Flush probe array (clflush)"
                     : "Prime cache sets",
        NodeRole::Setup, AttackStep::Setup);
    const NodeId use = g.addOperation(
        "Compute send address R from secret", NodeRole::Use,
        AttackStep::UseSend);
    const NodeId send = g.addOperation(
        flush_reload ? "Load R to cache"
                     : "Load R: evict receiver line",
        NodeRole::Send, AttackStep::UseSend);
    const NodeId receive = g.addOperation(
        flush_reload ? "Reload probe array and time"
                     : "Probe cache sets and time",
        NodeRole::Receive, AttackStep::Receive);
    g.addDependency(use, send, EdgeKind::Address);
    g.addDependency(setup, send, EdgeKind::Resource);
    g.addDependency(send, receive, EdgeKind::Resource);

    // Trigger / authorization half (steps 1b, 2, 3).
    NodeId mistrain = graph::kInvalidNode;
    if (spec.mistrainLabel) {
        mistrain = g.addOperation(spec.mistrainLabel,
                                  NodeRole::MistrainPredictor,
                                  AttackStep::Setup);
    }
    const NodeId trigger = g.addOperation(
        spec.triggerLabel, NodeRole::Trigger,
        AttackStep::DelayedAuth);
    const NodeId auth = g.addOperation(
        spec.authLabel, NodeRole::Authorization,
        AttackStep::DelayedAuth);
    const NodeId squash = g.addOperation(
        "Squash or commit", NodeRole::Squash,
        AttackStep::DelayedAuth);
    if (mistrain != graph::kInvalidNode)
        g.addDependency(mistrain, trigger, EdgeKind::Resource);
    g.addDependency(trigger, auth, EdgeKind::Data);
    g.addDependency(auth, squash, EdgeKind::Control);

    const NodeId access = g.addOperation(
        accessLabel(recipe.source), NodeRole::SecretAccess,
        AttackStep::Access);
    // Intra-instruction triggers feed the access as a micro-op of
    // the same instruction; prediction triggers reach it along the
    // speculative fetch path.
    g.addDependency(trigger, access,
                    spec.intraInstruction ? EdgeKind::Data
                                          : EdgeKind::Control);
    g.addDependency(access, use, EdgeKind::Data);
    return g;
}

std::optional<AttackVariant>
knownVariantFor(const AttackRecipe &r)
{
    using enum TriggerKind;
    using enum SecretSource;
    // The published variants, located in the three-dimensional
    // space (channel choice does not change the variant identity).
    switch (r.trigger) {
      case ConditionalBranch:
        if (r.source == Memory)
            return AttackVariant::SpectreV1;
        return std::nullopt;
      case IndirectBranch:
        if (r.source == Memory)
            return AttackVariant::SpectreV2;
        return std::nullopt;
      case ReturnAddress:
        if (r.source == Memory)
            return AttackVariant::SpectreRsb;
        return std::nullopt;
      case FaultingLoad:
        switch (r.source) {
          case Memory: return AttackVariant::Meltdown;
          case Cache: return AttackVariant::Foreshadow;
          case LineFillBuffer: return AttackVariant::ZombieLoad;
          case StoreBuffer: return AttackVariant::Fallout;
          case LoadPort: return AttackVariant::Ridl;
          default: return std::nullopt;
        }
      case MsrRead:
        if (r.source == SystemRegister)
            return AttackVariant::MeltdownV3a;
        return std::nullopt;
      case FpAccess:
        if (r.source == FpuRegister)
            return AttackVariant::LazyFp;
        return std::nullopt;
      case MemoryDisambiguation:
        if (r.source == StaleMemory)
            return AttackVariant::SpectreV4;
        return std::nullopt;
      case TsxAbort:
        switch (r.source) {
          case Cache:
          case StoreBuffer:
          case LoadPort: return AttackVariant::Taa;
          case LineFillBuffer: return AttackVariant::Cacheout;
          default: return std::nullopt;
        }
    }
    return std::nullopt;
}

} // namespace specsec::core
