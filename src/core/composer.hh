/**
 * @file
 * Attack composition (paper Section V-A): "any new combination of
 * these three dimensions of an attack gives a new attack".
 *
 * The three dimensions are (1) the hardware feature that delays
 * authorization while execution proceeds (the trigger), (2) the
 * source of the secret, and (3) the covert channel.  composeAttack()
 * builds the attack graph for an arbitrary combination; the
 * cross-product minus the published variants is the space of
 * new-attack candidates the model predicts.
 */

#ifndef SPECSEC_CORE_COMPOSER_HH
#define SPECSEC_CORE_COMPOSER_HH

#include <optional>
#include <vector>

#include "variants.hh"

namespace specsec::core
{

/** The delayed-authorization mechanisms the paper identifies. */
enum class TriggerKind : std::uint8_t
{
    ConditionalBranch,    ///< bounds-check resolution (v1 family)
    IndirectBranch,       ///< BTB target resolution (v2)
    ReturnAddress,        ///< RSB/return resolution (Spectre-RSB)
    FaultingLoad,         ///< load permission/fault check (Meltdown)
    MsrRead,              ///< RDMSR privilege check (v3a)
    FpAccess,             ///< FPU ownership check (LazyFP)
    MemoryDisambiguation, ///< store-load resolution (v4)
    TsxAbort,             ///< transaction abort completion (TAA)
};

/** @return stable human-readable trigger name. */
const char *triggerKindName(TriggerKind kind);

/** All triggers, for sweeps. */
const std::vector<TriggerKind> &allTriggerKinds();

/** One point in the paper's three-dimensional attack space. */
struct AttackRecipe
{
    TriggerKind trigger;
    SecretSource source;
    CovertChannelKind channel = CovertChannelKind::FlushReload;
};

/**
 * Build the attack graph for an arbitrary recipe.  Mistraining
 * setup is added for prediction-based triggers; faulting triggers
 * get intra-instruction expansion.
 */
AttackGraph composeAttack(const AttackRecipe &recipe);

/**
 * @return the published variant matching this recipe, if any
 *         (nullopt identifies a new-attack candidate).
 */
std::optional<AttackVariant> knownVariantFor(const AttackRecipe &r);

/** Sources that make sense to compose (excludes AddressMapping,
 *  which is a timing side channel rather than a data source). */
const std::vector<SecretSource> &composableSources();

} // namespace specsec::core

#endif // SPECSEC_CORE_COMPOSER_HH
