/**
 * @file
 * The defense catalog: every industry defense of Table II and every
 * academia defense discussed in Section V-B, each classified under
 * one of the paper's four defense strategies.  This encodes the
 * paper's claim that "all currently proposed defenses, from both
 * industry and academia, can be modelled by our defense strategies".
 *
 * The entries live in the ScenarioCatalog (catalog.hh) as
 * DefenseDescriptors, registered in defense/builtin_defenses.cc
 * alongside their simulator realizations; the accessors here are
 * thin views over the registry for enum-addressed callers.
 */

#ifndef SPECSEC_CORE_DEFENSE_CATALOG_HH
#define SPECSEC_CORE_DEFENSE_CATALOG_HH

#include <cstdint>
#include <vector>

#include "security_dependency.hh"
#include "variants.hh"

namespace specsec::core
{

/** Every defense mechanism the paper discusses. */
enum class DefenseMechanism : std::uint8_t
{
    // Industry (Table II).
    LFence,
    MFence,
    Kaiser,
    Kpti,
    DisableBranchPrediction,
    Ibrs,
    Stibp,
    Ibpb,
    InvalidatePredictorOnContextSwitch,
    Retpoline,
    CoarseAddressMasking,
    DataDependentAddressMasking,
    Ssbb,
    Ssbs,
    RsbStuffing,
    // Academia (Section V-B).
    ContextSensitiveFencing,
    Sabc,
    SpectreGuard,
    Nda,
    ConTExT,
    SpecShield,
    SpecShieldErpPlus,
    Stt,
    Dawg,
    InvisiSpec,
    SafeSpec,
    ConditionalSpeculation,
    EfficientInvisibleSpeculation,
    CleanupSpec,
};

/** Who proposed the mechanism. */
enum class DefenseOrigin : std::uint8_t
{
    Industry,
    Academia,
};

/** Static description of a defense mechanism. */
struct DefenseInfo
{
    DefenseMechanism mechanism;
    const char *name;
    DefenseOrigin origin;
    DefenseStrategy strategy; ///< the paper strategy it falls under
    const char *description;
    std::vector<AttackVariant> designedAgainst;
};

/** @return the static description of @p mechanism. */
const DefenseInfo &defenseInfo(DefenseMechanism mechanism);

/** @return every cataloged mechanism. */
const std::vector<DefenseMechanism> &allDefenseMechanisms();

/** @return true if @p mechanism is designed against @p variant. */
bool defenseApplies(DefenseMechanism mechanism, AttackVariant variant);

/**
 * Model @p mechanism on an attack graph: apply the strategy it falls
 * under (the paper's equivalence between a working defense and an
 * inserted security dependency).
 *
 * @return the security edges inserted.
 */
std::vector<graph::Edge> modelDefense(AttackGraph &g,
                                      DefenseMechanism mechanism);

} // namespace specsec::core

#endif // SPECSEC_CORE_DEFENSE_CATALOG_HH
