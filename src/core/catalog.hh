/**
 * @file
 * ScenarioCatalog: the self-describing attack/defense registry.
 *
 * The paper's central claim (Section V-A) is that speculative attacks
 * decompose into reusable steps that *compose* into new variants.
 * The catalog makes that claim an API: every attack is a first-class
 * AttackDescriptor — canonical name + aliases, attack class, paper
 * section, default covert channel, an attack-graph builder hook, and
 * an execute factory running it on the simulator — and every
 * hardware defense / software mitigation registers a matching
 * DefenseDescriptor / MitigationDescriptor.  All dispatch that used
 * to be parallel `switch (variant)` statements (attacks::runVariant,
 * buildAttackGraph, findVariantByName, defenseInfo, applyMitigation)
 * is a catalog lookup, so adding a scenario is one registration call
 * in one file — no enum edit, no switch edits across four layers
 * (examples/custom_attack.cpp proves the seam from out of tree).
 *
 * Built-in descriptors are registered the first time instance() is
 * called, from hooks defined next to the subsystems that own the
 * implementations (src/attacks/builtin_attacks.cc,
 * src/defense/builtin_defenses.cc).  Extensions registered at
 * startup get a synthetic AttackVariant slot at kExtensionIdBase and
 * up, so they flow through scenario keys, dedup, shard reports and
 * the persistent result cache exactly like built-ins.
 */

#ifndef SPECSEC_CORE_CATALOG_HH
#define SPECSEC_CORE_CATALOG_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "attacks/attack_kit.hh"
#include "defense_catalog.hh"
#include "uarch/isa.hh"
#include "variants.hh"

namespace specsec::core
{

/** @return stable human-readable class name. */
const char *attackClassName(AttackClass klass);

/**
 * The execute factory of a registered attack: run the attack on a
 * configured CPU and report the scenario's final pipeline counters.
 * Wrap a plain `(config, options) -> AttackResult` runner with
 * attacks::statsCollectingExecute (runner.hh) to get one.
 */
using AttackExecuteFn = std::function<attacks::AttackResult(
    const uarch::CpuConfig &, const attacks::AttackOptions &,
    uarch::CpuStats &)>;

/** Attack-graph builder hook (the paper figure for the variant). */
using AttackGraphFn = std::function<AttackGraph(CovertChannelKind)>;

/**
 * Verdict of the analysis-only backend (src/verdict/) for one
 * scenario cell, predicted from the attack graph without running the
 * simulator.  Leak / Blocked / Inapplicable are *decided* verdicts:
 * they predict the simulator's leak bit (Leak -> leaked, the other
 * two -> not leaked).  Undecided means the cell's outcome hinges on
 * a timing quantity the graph does not model (a speculation-window
 * ablation, an off-default cache geometry) and only the simulator
 * can tell.
 */
enum class ModelVerdict : std::uint8_t
{
    Leak = 0,         ///< a secret flow escapes every authorization
    Blocked = 1,      ///< an inserted security dependency cuts all flows
    Inapplicable = 2, ///< the core ablates a path the attack requires
    Undecided = 3,    ///< timing-dependent; simulate to find out
};

/** @return stable lower-case verdict name ("leak", "blocked", ...). */
const char *modelVerdictName(ModelVerdict verdict);

/** One analytic verdict plus its graph-derived justification. */
struct ModelJudgement
{
    ModelVerdict verdict = ModelVerdict::Undecided;

    /// One line of evidence: the surviving secret flow, the cutting
    /// security edge, the ablated path, or the timing knob that
    /// forced Undecided.  Deterministic per (variant, config,
    /// options), so differential goldens are stable.
    std::string evidence;

    /// One-line rationale to pin in golden/differential-*.json when
    /// the simulator disagrees with a decided verdict (set by rules
    /// with a known model-vs-simulator gap; empty otherwise).
    std::string rationale;

    /** Decided verdicts predict the simulator's leak bit. */
    bool decided() const { return verdict != ModelVerdict::Undecided; }
    bool predictsLeak() const { return verdict == ModelVerdict::Leak; }
};

/**
 * The analytic-verdict hook of a registered attack: judge a cell
 * from the attack graph alone (src/verdict/model.cc for built-ins).
 * Optional; attacks without the hook are Undecided everywhere, so
 * the differential backend never flags them and the triage backend
 * always simulates them.
 */
using ModelVerdictFn = std::function<ModelJudgement(
    const uarch::CpuConfig &, const attacks::AttackOptions &)>;

/**
 * Triage canonicalization hook: map @p options to the representative
 * the execute runner actually distinguishes, resetting every
 * AttackOptions field the runner provably never reads to its default
 * value.  Two cells whose (variant, config, canonical options) agree
 * are the same experiment to the runner, so the triage backend
 * simulates one of them and replicates the result.  Optional; absent
 * means no replication for this attack.  CpuConfig is never
 * canonicalized — every CPU knob feeds the simulated core.
 */
using CanonicalOptionsFn = std::function<attacks::AttackOptions(
    const attacks::AttackOptions &)>;

/** Simulator realization of a defense mechanism. */
using DefenseApplyFn = std::function<void(uarch::CpuConfig &,
                                          attacks::AttackOptions &)>;

/**
 * The static-analysis view of an attack: the concrete ISA program
 * its transient gadget corresponds to, the protected memory ranges
 * holding the secret, and the registers the attacker controls or
 * the program knows on entry.  This is exactly the input of the
 * Section V-C / Fig. 9 analyzer (tool::analyzeSpec); it lives in
 * core so descriptors can carry it without the catalog depending on
 * the tool layer — lint and the static verdict backend convert it.
 */
struct StaticProgramSpec
{
    uarch::Program program;

    /** One memory range holding secrets (tool::ProtectedRange). */
    struct Range
    {
        uarch::Addr base = 0;
        uarch::Addr length = 0;
        std::string name = "secret";
    };
    std::vector<Range> ranges;

    /// Registers holding attacker-controlled program input.
    std::vector<uarch::RegId> attackerRegs;

    /// Registers with known constant values (array bases, bounds).
    std::vector<std::pair<uarch::RegId, uarch::Word>> knownRegs;

    /// array_index_nospec knowledge for the masking transform: the
    /// speculated index register and the mask that provably clamps
    /// it into the legal range.  Absent when the shape has no
    /// maskable index (faulting accesses, special-register reads).
    std::optional<uarch::RegId> maskReg;
    std::optional<uarch::Word> maskValue;

    /// Which speculation classes the analysis should consider for
    /// this shape (mirrors tool::ThreatModel).  Branch-family
    /// programs switch off store-bypass so incidental store/load
    /// pairs do not grow spurious disambiguation nodes.
    bool modelBranches = true;
    bool modelFaults = true;
    bool modelStoreBypass = true;
};

/**
 * Build the attack's static program on demand.  Optional: attacks
 * without the hook (pure timing attacks like Spoiler, extensions
 * that never wrote one) are invisible to the lint subsystem and
 * Undecided under the static verdict backend.
 */
using StaticProgramFn = std::function<StaticProgramSpec()>;

/**
 * Outcome of a program-level hardening transform (a
 * MitigationDescriptor realized as an ISA rewrite, not just a
 * simulator toggle): the hardened spec plus the patch overhead the
 * campaign exports, and the post-transform static verification.
 */
struct TransformResult
{
    StaticProgramSpec hardened;
    std::size_t fencesInserted = 0;
    std::size_t masksInserted = 0;
    /// hardened.program.size() - original program size.
    std::size_t extraInstructions = 0;
    /// True when re-analyzing the hardened program finds no
    /// remaining missing security dependency.
    bool verified = false;
    /// Races the transform provably cannot close (intra-instruction
    /// Meltdown-type expansions).
    std::size_t residualRaces = 0;
};

/** Apply a hardening transform to one attack's static program. */
using ProgramTransformFn =
    std::function<TransformResult(const StaticProgramSpec &)>;

/**
 * First AttackVariant slot the catalog hands to attacks registered
 * without an enum value.  Everything below this is reserved for the
 * named enumerators; scenario keys serialize the slot, so built-in
 * keys are byte-identical to the pre-catalog encoding.
 */
inline constexpr std::uint8_t kExtensionIdBase = 64;

/** Self-description of one registered attack. */
struct AttackDescriptor
{
    /// Canonical catalog name ("Spectre v1"); row label in campaign
    /// reports and exports.
    std::string name;

    /// Alternative spellings accepted by name lookup.  Lookup folds
    /// case and punctuation, so "spectre-v1" / "Spectre V1" /
    /// "SpectreV1" are already one alias.
    std::vector<std::string> aliases;

    AttackClass klass = AttackClass::SpectreType;
    std::string cve = "N/A";

    /// Which paper figure/section models it ("Fig. 1", "Sec. V-A").
    std::string paperSection;

    /// Channel the attack's graph and demos default to.
    CovertChannelKind defaultChannel = CovertChannelKind::FlushReload;

    /// Build the paper's attack graph for this variant (optional but
    /// expected; core::composeAttack covers composed variants).
    AttackGraphFn buildGraph;

    /// Run the attack on the simulator (optional for model-only
    /// entries; required to appear in campaign grids).
    AttackExecuteFn execute;

    /// Judge a cell analytically, next to the execute factory: the
    /// model/differential/triage backends (src/verdict/) dispatch
    /// here.  Optional — see ModelVerdictFn for absent semantics.
    ModelVerdictFn modelVerdict;

    /// Canonicalize AttackOptions for triage replication (see
    /// CanonicalOptionsFn).  Optional.
    CanonicalOptionsFn canonicalOptions;

    /// Build the variant's static program for the Fig. 9 analyzer
    /// (lint + static verdict backend).  Optional — see
    /// StaticProgramFn for absent semantics.
    StaticProgramFn staticProgram;

    /// Built-in enum slot.  Leave empty for out-of-tree attacks:
    /// registerAttack assigns a synthetic slot >= kExtensionIdBase.
    std::optional<AttackVariant> variant;

    /// Catalog-assigned numeric identity (== *variant when set).
    /// Set by registerAttack; scenario keys serialize this value.
    AttackVariant id{};

    /** True when this attack has no named enumerator. */
    bool isExtension() const { return !variant.has_value(); }
};

/** Self-description of one registered defense mechanism. */
struct DefenseDescriptor
{
    /// The paper metadata (name, origin, strategy, description,
    /// designed-against list).  info.name is the canonical catalog
    /// name; for built-ins info.mechanism == *mechanism.
    DefenseInfo info;

    /// Alternative spellings accepted by name lookup.
    std::vector<std::string> aliases;

    /// Built-in enum slot; empty for out-of-tree defenses.
    std::optional<DefenseMechanism> mechanism;

    /// Configure the simulated CPU / scenario options to realize the
    /// mechanism (the body of the old applyMitigation switch).
    DefenseApplyFn apply;
};

/**
 * The AttackOptions toggles a software mitigation sets.  Data-only
 * (mirrors campaign::SoftwareMitigation): toggles are OR-ed into the
 * baseline options, never cleared, so a sweep entry is fully
 * described by its fields and dedup/exports stay deterministic.
 */
struct MitigationToggles
{
    bool kpti = false;           ///< unmap kernel pages (Meltdown)
    bool rsbStuffing = false;    ///< benign RSB refill (Spectre-RSB)
    bool softwareLfence = false; ///< LFENCE after bounds checks
    bool addressMasking = false; ///< index masking after bounds checks
    bool flushL1OnExit = false;  ///< L1 flush on exit (Foreshadow)

    /** OR the set toggles into @p options (never clears). */
    void applyTo(attacks::AttackOptions &options) const;
};

/** Self-description of one software-mitigation sweep value. */
struct MitigationDescriptor
{
    /// Canonical catalog name ("kpti"); sweep label in reports.
    std::string name;
    std::vector<std::string> aliases;
    std::string description;
    MitigationToggles toggles;

    /// Program-level realization (optional): rewrite the attack's
    /// static program (fence insertion, index masking) instead of
    /// only toggling the simulator runner.  The static verdict
    /// backend analyzes the transformed program and the campaign
    /// exports the returned patch overhead.
    ProgramTransformFn transform;

    /** OR the toggles into @p options. */
    void applyTo(attacks::AttackOptions &options) const
    {
        toggles.applyTo(options);
    }
};

class ScenarioCatalog;

namespace detail
{
/// Built-in registration hooks, defined next to the subsystems that
/// own the runners (src/attacks/builtin_attacks.cc) and the
/// simulator realizations (src/defense/builtin_defenses.cc).
/// instance() calls each exactly once; referencing them from
/// catalog.cc is what links the registration objects into every
/// binary using the catalog.
void registerBuiltinAttacks(ScenarioCatalog &catalog);
void registerBuiltinDefenses(ScenarioCatalog &catalog);
void registerBuiltinMitigations(ScenarioCatalog &catalog);
} // namespace detail

/**
 * The process-wide registry of attacks, defenses and mitigations.
 *
 * Registration normally happens once at startup (built-ins lazily on
 * first instance() use; extensions from static registrars or main),
 * but every member is thread-safe, so campaign worker threads can
 * look descriptors up concurrently.  Descriptors are stored behind
 * stable pointers: a `const AttackDescriptor *` stays valid for the
 * catalog's lifetime regardless of later registrations.
 *
 * Name lookup folds case and punctuation ("Spectre v1" ==
 * "spectre-v1" == "SpectreV1") and matches canonical names and
 * aliases alike.  Registration throws std::invalid_argument on any
 * collision — two descriptors sharing a folded name/alias, a reused
 * enum slot, or an exhausted extension id space — so a conflicting
 * extension fails loudly at startup instead of shadowing an attack.
 */
class ScenarioCatalog
{
  public:
    /** The global catalog, with every built-in registered. */
    static ScenarioCatalog &instance();

    /** Construct an empty catalog (tests; no built-ins). */
    ScenarioCatalog() = default;

    ScenarioCatalog(const ScenarioCatalog &) = delete;
    ScenarioCatalog &operator=(const ScenarioCatalog &) = delete;

    /// @name Attacks
    /// @{

    /**
     * Register @p descriptor, assigning descriptor.id (the enum slot
     * when set, else the next free extension slot).
     *
     * @return the stored descriptor (stable address).
     * @throws std::invalid_argument on name/alias/slot collision.
     */
    const AttackDescriptor &registerAttack(AttackDescriptor descriptor);

    /** @return the attack called @p name (any alias), or nullptr. */
    const AttackDescriptor *findAttack(const std::string &name) const;

    /** @return the attack occupying slot @p id, or nullptr. */
    const AttackDescriptor *findAttack(AttackVariant id) const;

    /** Every registered attack, in registration order (built-ins
     *  first, in Table III order). */
    std::vector<const AttackDescriptor *> attacks() const;

    /** Canonical names of the closest registered attacks to
     *  @p name — the "did you mean" list for unknown-name errors. */
    std::vector<std::string>
    attackSuggestions(const std::string &name, std::size_t max = 3) const;

    /// @}
    /// @name Defenses
    /// @{

    const DefenseDescriptor &
    registerDefense(DefenseDescriptor descriptor);

    const DefenseDescriptor *findDefense(const std::string &name) const;

    const DefenseDescriptor *findDefense(DefenseMechanism mechanism) const;

    /** Every registered defense, registration order (Table II order). */
    std::vector<const DefenseDescriptor *> defenses() const;

    std::vector<std::string>
    defenseSuggestions(const std::string &name, std::size_t max = 3) const;

    /// @}
    /// @name Software mitigations
    /// @{

    const MitigationDescriptor &
    registerMitigation(MitigationDescriptor descriptor);

    const MitigationDescriptor *
    findMitigation(const std::string &name) const;

    std::vector<const MitigationDescriptor *> mitigations() const;

    std::vector<std::string>
    mitigationSuggestions(const std::string &name,
                          std::size_t max = 3) const;

    /// @}

  private:
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<AttackDescriptor>> attacks_;
    std::unordered_map<std::string, const AttackDescriptor *>
        attackByName_;
    std::unordered_map<std::uint8_t, const AttackDescriptor *>
        attackById_;
    std::uint8_t nextExtensionId_ = kExtensionIdBase;

    std::vector<std::unique_ptr<DefenseDescriptor>> defenses_;
    std::unordered_map<std::string, const DefenseDescriptor *>
        defenseByName_;
    std::unordered_map<std::uint8_t, const DefenseDescriptor *>
        defenseByMechanism_;

    std::vector<std::unique_ptr<MitigationDescriptor>> mitigations_;
    std::unordered_map<std::string, const MitigationDescriptor *>
        mitigationByName_;
};

/**
 * The case/punctuation-insensitive key both sides of every catalog
 * name lookup use: lower-cased alphanumerics only ("Spectre v1.1"
 * -> "spectrev11").
 */
std::string foldName(const std::string &name);

/**
 * The closest @p candidates to @p query by edit distance over folded
 * names, nearest first (ties break on candidate order).  Candidates
 * further than max(2, |query|/3) edits are never suggested; at most
 * @p max survive.  Shared by every "did you mean" error in the tree
 * (catalog lookups, regress spec names, CLI parsing).
 */
std::vector<std::string>
suggestNames(const std::vector<std::string> &candidates,
             const std::string &query, std::size_t max = 3);

/**
 * Render the standard unknown-name error: "unknown <kind> '<name>'"
 * plus a "did you mean" tail when @p suggestions is non-empty.
 */
std::string unknownNameMessage(const std::string &kind,
                               const std::string &name,
                               const std::vector<std::string> &suggestions);

} // namespace specsec::core

#endif // SPECSEC_CORE_CATALOG_HH
