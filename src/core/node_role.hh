/**
 * @file
 * Operation roles and attack steps for attack graphs.
 *
 * Section IV-B of the paper requires four vertex types in every
 * attack graph: authorization operations, the sender's secret access,
 * the sender's send (micro-architectural state change), and the
 * receiver's secret retrieval.  We add the auxiliary roles that the
 * paper's figures use (setup, mistraining, trigger instruction,
 * squash) so the full figures can be reconstructed.
 *
 * Section III decomposes every speculative attack into steps 0-5;
 * AttackStep records which step an operation belongs to, and the
 * partA()/partB() helpers reproduce the paper's A/B split (secret
 * access vs. covert channel).
 */

#ifndef SPECSEC_CORE_NODE_ROLE_HH
#define SPECSEC_CORE_NODE_ROLE_HH

#include <cstdint>

namespace specsec::core
{

/** Role of an operation vertex in an attack graph. */
enum class NodeRole : std::uint8_t
{
    Setup,             ///< covert channel preparation (e.g. clflush)
    MistrainPredictor, ///< attacker steering of a hardware predictor
    PredictorFlush,    ///< defensive predictor clearing (strategy 4)
    Trigger,           ///< instruction initiating delayed authorization
    Authorization,     ///< completion of the authorization check
    SecretAccess,      ///< sender's illegal access of the secret
    Use,               ///< transformation of the secret (compute R)
    Send,              ///< micro-architectural state change (send)
    Receive,           ///< receiver's retrieval via the covert channel
    Squash,            ///< pipeline squash-or-commit after resolution
    Other,             ///< any other operation
};

/** @return stable human-readable role name. */
const char *nodeRoleName(NodeRole role);

/** The 6-step attack decomposition of Section III. */
enum class AttackStep : std::uint8_t
{
    Unspecified,
    FindSecret,  ///< step 0: locate the secret
    Setup,       ///< step 1: channel setup + access setup
    DelayedAuth, ///< step 2: authorization delayed, window opens
    Access,      ///< step 3: sender illegally accesses the secret
    UseSend,     ///< step 4: transform + send the secret
    Receive,     ///< step 5: receiver retrieves the secret
};

/** @return stable human-readable step name. */
const char *attackStepName(AttackStep step);

/**
 * @return true if the operation belongs to part A (secret access):
 *         steps 0, 1(b), 2 and 3.  Step 1 splits by role: predictor
 *         mistraining is 1(b) (part A), channel setup is 1(a)
 *         (part B).
 */
bool isPartA(AttackStep step, NodeRole role);

/**
 * @return true if the operation belongs to part B (covert channel):
 *         steps 1(a), 4 and 5.
 */
bool isPartB(AttackStep step, NodeRole role);

} // namespace specsec::core

#endif // SPECSEC_CORE_NODE_ROLE_HH
