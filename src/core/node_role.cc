#include "node_role.hh"

namespace specsec::core
{

const char *
nodeRoleName(NodeRole role)
{
    switch (role) {
      case NodeRole::Setup: return "setup";
      case NodeRole::MistrainPredictor: return "mistrain-predictor";
      case NodeRole::PredictorFlush: return "predictor-flush";
      case NodeRole::Trigger: return "trigger";
      case NodeRole::Authorization: return "authorization";
      case NodeRole::SecretAccess: return "secret-access";
      case NodeRole::Use: return "use";
      case NodeRole::Send: return "send";
      case NodeRole::Receive: return "receive";
      case NodeRole::Squash: return "squash";
      case NodeRole::Other: return "other";
    }
    return "unknown";
}

const char *
attackStepName(AttackStep step)
{
    switch (step) {
      case AttackStep::Unspecified: return "unspecified";
      case AttackStep::FindSecret: return "step0-find-secret";
      case AttackStep::Setup: return "step1-setup";
      case AttackStep::DelayedAuth: return "step2-delayed-auth";
      case AttackStep::Access: return "step3-secret-access";
      case AttackStep::UseSend: return "step4-use-and-send";
      case AttackStep::Receive: return "step5-receive";
    }
    return "unknown";
}

bool
isPartA(AttackStep step, NodeRole role)
{
    if (step == AttackStep::Setup)
        return role == NodeRole::MistrainPredictor;
    return step == AttackStep::FindSecret ||
           step == AttackStep::DelayedAuth ||
           step == AttackStep::Access;
}

bool
isPartB(AttackStep step, NodeRole role)
{
    if (step == AttackStep::Setup)
        return role != NodeRole::MistrainPredictor;
    return step == AttackStep::UseSend || step == AttackStep::Receive;
}

} // namespace specsec::core
