/**
 * @file
 * Security dependencies (Definition 2) and the four defense
 * strategies of Section V-B.
 *
 * A security dependency orders an authorization operation before a
 * protected operation.  The strategies differ in *which* operation is
 * protected:
 *
 *   1 PreventAccess  -- authorization before the secret access,
 *   2 PreventUse     -- authorization before use of accessed data,
 *   3 PreventSend    -- authorization before the micro-architectural
 *                       state change that sends the secret,
 *   4 ClearPredictions -- cut predictor-mistraining influence on the
 *                       trigger instruction (IBPB-style).
 *
 * applyDefense() edits an AttackGraph in place; defenseBlocks()
 * answers the paper's key question -- does this defense defeat this
 * attack, and why -- by re-running the attack-success analysis.
 */

#ifndef SPECSEC_CORE_SECURITY_DEPENDENCY_HH
#define SPECSEC_CORE_SECURITY_DEPENDENCY_HH

#include <cstdint>
#include <vector>

#include "attack_graph.hh"

namespace specsec::core
{

/** The paper's four defense strategies (Fig. 8 circled 1-4). */
enum class DefenseStrategy : std::uint8_t
{
    PreventAccess = 1,
    PreventUse = 2,
    PreventSend = 3,
    ClearPredictions = 4,
};

/** @return stable human-readable strategy name. */
const char *defenseStrategyName(DefenseStrategy strategy);

/** All four strategies, for sweeps. */
std::vector<DefenseStrategy> allDefenseStrategies();

/**
 * Apply a defense strategy to @p g in place.
 *
 * Strategies 1-3 insert security-dependency edges from every
 * authorization node to every node of the protected role.
 * Strategy 4 splices a PredictorFlush node into every
 * mistrain -> trigger influence edge.
 *
 * @return the security edges inserted (empty when the strategy has no
 *         applicable target, e.g. strategy 4 on Meltdown).
 */
std::vector<graph::Edge> applyDefense(AttackGraph &g,
                                      DefenseStrategy strategy);

/**
 * Insert one targeted security dependency authorization -> node
 * (a single red dashed arrow in Fig. 4), for studying partial
 * defenses such as the insufficiency example of Section V-B.
 *
 * @return true if the edge was inserted (or already present).
 */
bool applyTargetedDependency(AttackGraph &g, NodeId authorization,
                             NodeId protected_op);

/**
 * Decide whether a strategy blocks the attack modeled by @p g:
 * copies the graph, applies the strategy, and re-evaluates
 * AttackGraph::isVulnerable().
 */
bool defenseBlocks(const AttackGraph &g, DefenseStrategy strategy);

} // namespace specsec::core

#endif // SPECSEC_CORE_SECURITY_DEPENDENCY_HH
