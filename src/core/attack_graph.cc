#include "attack_graph.hh"

#include <algorithm>
#include <stdexcept>

#include "graph/race.hh"

namespace specsec::core
{

NodeId
AttackGraph::addOperation(std::string label, NodeRole role,
                          AttackStep step)
{
    const NodeId id = tsg_.addNode(std::move(label));
    roles_.push_back(role);
    steps_.push_back(step);
    return id;
}

bool
AttackGraph::addDependency(NodeId u, NodeId v, EdgeKind kind)
{
    return tsg_.addEdge(u, v, kind);
}

bool
AttackGraph::addSecurityDependency(NodeId authorization,
                                   NodeId protected_op)
{
    return tsg_.addEdge(authorization, protected_op,
                        EdgeKind::Security);
}

NodeRole
AttackGraph::role(NodeId u) const
{
    if (u >= roles_.size())
        throw std::out_of_range("AttackGraph: node id out of range");
    return roles_[u];
}

AttackStep
AttackGraph::step(NodeId u) const
{
    if (u >= steps_.size())
        throw std::out_of_range("AttackGraph: node id out of range");
    return steps_[u];
}

void
AttackGraph::setRole(NodeId u, NodeRole role)
{
    if (u >= roles_.size())
        throw std::out_of_range("AttackGraph: node id out of range");
    roles_[u] = role;
}

std::vector<NodeId>
AttackGraph::nodesWithRole(NodeRole role) const
{
    std::vector<NodeId> result;
    for (NodeId u = 0; u < roles_.size(); ++u) {
        if (roles_[u] == role)
            result.push_back(u);
    }
    return result;
}

std::vector<NodeId>
AttackGraph::authorizationNodes() const
{
    return nodesWithRole(NodeRole::Authorization);
}

std::vector<NodeId>
AttackGraph::secretAccessNodes() const
{
    return nodesWithRole(NodeRole::SecretAccess);
}

std::vector<NodeId>
AttackGraph::sendNodes() const
{
    return nodesWithRole(NodeRole::Send);
}

std::vector<NodeId>
AttackGraph::receiveNodes() const
{
    return nodesWithRole(NodeRole::Receive);
}

std::vector<RaceFinding>
AttackGraph::missingSecurityDependencies() const
{
    std::vector<RaceFinding> findings;
    const graph::ReachabilityMatrix m(tsg_);
    for (NodeId auth : authorizationNodes()) {
        for (NodeId u = 0; u < roles_.size(); ++u) {
            const NodeRole r = roles_[u];
            if (r != NodeRole::SecretAccess && r != NodeRole::Use &&
                r != NodeRole::Send) {
                continue;
            }
            if (graph::hasRace(m, auth, u))
                findings.push_back({auth, u, r});
        }
    }
    return findings;
}

std::vector<NodeId>
AttackGraph::speculativeWindow() const
{
    std::vector<NodeId> window;
    const graph::ReachabilityMatrix m(tsg_);
    const auto auths = authorizationNodes();
    for (NodeId u = 0; u < roles_.size(); ++u) {
        if (roles_[u] == NodeRole::Authorization)
            continue;
        const bool races = std::any_of(
            auths.begin(), auths.end(),
            [&](NodeId a) { return graph::hasRace(m, a, u); });
        if (races)
            window.push_back(u);
    }
    return window;
}

namespace
{

/** True for the edge kinds a secret value propagates along. */
bool
propagates(EdgeKind kind)
{
    return kind == EdgeKind::Data || kind == EdgeKind::Address;
}

void
extendFlows(const Tsg &g, const std::vector<NodeRole> &roles,
            SecretFlow &current, std::vector<SecretFlow> &out)
{
    const NodeId tail = current.back();
    if (roles[tail] == NodeRole::Send) {
        out.push_back(current);
        return;
    }
    for (NodeId next : g.successors(tail)) {
        const auto kind = g.edgeKind(tail, next);
        if (!kind || !propagates(*kind))
            continue;
        if (std::find(current.begin(), current.end(), next) !=
            current.end()) {
            continue;
        }
        current.push_back(next);
        extendFlows(g, roles, current, out);
        current.pop_back();
    }
}

} // anonymous namespace

std::vector<SecretFlow>
AttackGraph::secretFlows() const
{
    std::vector<SecretFlow> flows;
    for (NodeId access : secretAccessNodes()) {
        SecretFlow current{access};
        extendFlows(tsg_, roles_, current, flows);
    }
    return flows;
}

bool
AttackGraph::flowEscapesAuthorization(const SecretFlow &flow,
                                      NodeId authorization) const
{
    // Mask out every SecretAccess node that is not on this flow:
    // alternative sources are OR-alternatives, so orderings imposed
    // through them do not constrain this flow's execution.
    std::vector<bool> excluded(tsg_.nodeCount(), false);
    for (NodeId u = 0; u < roles_.size(); ++u) {
        if (roles_[u] == NodeRole::SecretAccess &&
            std::find(flow.begin(), flow.end(), u) == flow.end()) {
            excluded[u] = true;
        }
    }
    for (NodeId x : flow) {
        if (graph::pathExistsAvoiding(tsg_, authorization, x,
                                      excluded)) {
            return false; // x is ordered after the authorization
        }
    }
    return true;
}

bool
AttackGraph::mistrainInfluenceIntact() const
{
    const auto mistrains = nodesWithRole(NodeRole::MistrainPredictor);
    if (mistrains.empty())
        return true;
    const auto triggers = nodesWithRole(NodeRole::Trigger);
    std::vector<bool> excluded(tsg_.nodeCount(), false);
    for (NodeId u = 0; u < roles_.size(); ++u) {
        if (roles_[u] == NodeRole::PredictorFlush)
            excluded[u] = true;
    }
    for (NodeId m : mistrains) {
        for (NodeId t : triggers) {
            if (graph::pathExistsAvoiding(tsg_, m, t, excluded))
                return true;
        }
    }
    return false;
}

bool
AttackGraph::isVulnerable() const
{
    if (!mistrainInfluenceIntact())
        return false;
    const auto auths = authorizationNodes();
    const auto flows = secretFlows();
    for (NodeId auth : auths) {
        for (const SecretFlow &flow : flows) {
            if (flowEscapesAuthorization(flow, auth))
                return true;
        }
    }
    return false;
}

std::string
describeFlow(const AttackGraph &g, const SecretFlow &flow)
{
    std::string out;
    for (std::size_t i = 0; i < flow.size(); ++i) {
        if (i)
            out += " -> ";
        out += g.tsg().label(flow[i]);
    }
    return out;
}

std::string
describeEdge(const AttackGraph &g, const graph::Edge &e)
{
    std::string out = g.tsg().label(e.from);
    out += " -> ";
    out += g.tsg().label(e.to);
    out += " (";
    out += graph::edgeKindName(e.kind);
    out += ")";
    return out;
}

VulnerabilityWitness
analyzeVulnerability(const AttackGraph &g)
{
    VulnerabilityWitness w;
    if (!g.mistrainInfluenceIntact()) {
        w.vulnerable = false;
        w.summary = "every mistrain -> trigger influence path runs "
                    "through a PredictorFlush node";
        return w;
    }
    const auto auths = g.authorizationNodes();
    const auto flows = g.secretFlows();
    for (NodeId auth : auths) {
        for (const SecretFlow &flow : flows) {
            if (g.flowEscapesAuthorization(flow, auth)) {
                w.vulnerable = true;
                w.flow = flow;
                w.authorization = auth;
                w.summary = "flow survives: " + describeFlow(g, flow) +
                            " escapes authorization '" +
                            g.tsg().label(auth) + "'";
                return w;
            }
        }
    }
    w.vulnerable = false;
    if (flows.empty()) {
        w.summary = "no secret flow reaches a Send node";
    } else if (auths.empty()) {
        // Degenerate: without an authorization node nothing can
        // escape one; treat as blocked-by-construction.
        w.summary = "graph has no authorization node to race";
    } else {
        w.summary = "every secret flow is ordered after an "
                    "authorization node";
    }
    return w;
}

} // namespace specsec::core
