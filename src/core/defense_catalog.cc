#include "defense_catalog.hh"

#include <stdexcept>

#include "catalog.hh"

namespace specsec::core
{

const DefenseInfo &
defenseInfo(DefenseMechanism mechanism)
{
    const DefenseDescriptor *descriptor =
        ScenarioCatalog::instance().findDefense(mechanism);
    if (descriptor == nullptr)
        throw std::invalid_argument("defenseInfo: unknown mechanism");
    return descriptor->info;
}

const std::vector<DefenseMechanism> &
allDefenseMechanisms()
{
    static const std::vector<DefenseMechanism> all = [] {
        std::vector<DefenseMechanism> v;
        for (const DefenseDescriptor *d :
             ScenarioCatalog::instance().defenses()) {
            if (d->mechanism)
                v.push_back(*d->mechanism);
        }
        return v;
    }();
    return all;
}

bool
defenseApplies(DefenseMechanism mechanism, AttackVariant variant)
{
    const DefenseInfo &info = defenseInfo(mechanism);
    for (AttackVariant v : info.designedAgainst) {
        if (v == variant)
            return true;
    }
    return false;
}

std::vector<graph::Edge>
modelDefense(AttackGraph &g, DefenseMechanism mechanism)
{
    return applyDefense(g, defenseInfo(mechanism).strategy);
}

} // namespace specsec::core
