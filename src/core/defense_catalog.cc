#include "defense_catalog.hh"

#include <stdexcept>

namespace specsec::core
{

namespace
{

using enum AttackVariant;
using enum DefenseMechanism;
using enum DefenseOrigin;
using enum DefenseStrategy;

/** Spectre bounds-bypass family (Table II row "address masking"). */
const std::vector<AttackVariant> kBoundsFamily = {
    SpectreV1, SpectreV1_1, SpectreV1_2};

/** Branch-prediction-based family (Table II "prevent mis-training"). */
const std::vector<AttackVariant> kPredictionFamily = {
    SpectreV1, SpectreV1_1, SpectreV1_2, SpectreV2};

/** Every variant that exfiltrates through the cache covert channel. */
const std::vector<AttackVariant> kCacheChannelFamily = {
    SpectreV1, SpectreV1_1, SpectreV1_2, SpectreV2, Meltdown,
    MeltdownV3a, SpectreV4, SpectreRsb, Foreshadow, ForeshadowOs,
    ForeshadowVmm, LazyFp, Ridl, ZombieLoad, Fallout, Lvi, Taa,
    Cacheout};

const std::vector<DefenseInfo> kDefenseTable = {
    {LFence, "LFENCE", Industry, PreventAccess,
     "Serializing fence: no younger load executes before the fence "
     "retires, ordering the access after the authorization.",
     kBoundsFamily},
    {MFence, "MFENCE", Industry, PreventAccess,
     "Full memory fence serializing loads and stores.",
     kBoundsFamily},
    {Kaiser, "KAISER", Industry, PreventAccess,
     "Unmap kernel pages from user space so no transient access to "
     "kernel data is possible before authorization.",
     {Meltdown}},
    {Kpti, "Kernel Page Table Isolation (KPTI)", Industry,
     PreventAccess,
     "Linux implementation of KAISER: separate user/kernel page "
     "tables remove the secret from the attacker's address space.",
     {Meltdown}},
    {DisableBranchPrediction, "Disable branch prediction", Industry,
     ClearPredictions,
     "No prediction means no attacker-steered transient path.",
     kPredictionFamily},
    {Ibrs, "Indirect Branch Restricted Speculation (IBRS)", Industry,
     ClearPredictions,
     "Restricts indirect branch prediction from less privileged "
     "mode's training.",
     {SpectreV2}},
    {Stibp, "Single Thread Indirect Branch Predictor (STIBP)",
     Industry, ClearPredictions,
     "Prevents sibling hyperthread from steering indirect branch "
     "prediction.",
     {SpectreV2}},
    {Ibpb, "Indirect Branch Prediction Barrier (IBPB)", Industry,
     ClearPredictions,
     "Flushes indirect branch predictor state at the barrier so "
     "earlier training cannot influence later branches.",
     {SpectreV2}},
    {InvalidatePredictorOnContextSwitch,
     "Invalidate branch predictor / BTB on context switch", Industry,
     ClearPredictions,
     "AMD-style predictor invalidation between contexts.",
     {SpectreV2}},
    {Retpoline, "Retpoline", Industry, ClearPredictions,
     "Replaces indirect branches (poisoned BTB) with returns that "
     "use the return stack.",
     {SpectreV2}},
    {CoarseAddressMasking, "Coarse address masking", Industry,
     PreventAccess,
     "Force the accessed address into the legal range regardless of "
     "the speculated index (V8 / Linux kernel).",
     kBoundsFamily},
    {DataDependentAddressMasking, "Data-dependent address masking",
     Industry, PreventAccess,
     "Mask computed from the bounds comparison, clamping "
     "out-of-bounds speculative accesses.",
     kBoundsFamily},
    {Ssbb, "Speculative Store Bypass Barrier (SSBB)", Industry,
     PreventAccess,
     "ARM barrier: loads cannot bypass older stores' address "
     "resolution across the barrier.",
     {SpectreV4}},
    {Ssbs, "Speculative Store Bypass Safe (SSBS)", Industry,
     PreventAccess,
     "Mode bit disabling speculative store bypass entirely.",
     {SpectreV4}},
    {RsbStuffing, "RSB stuffing", Industry, ClearPredictions,
     "Refill the return stack buffer so returns never fall back to "
     "the poisoned BTB or stale entries.",
     {SpectreRsb}},
    {ContextSensitiveFencing, "Context-sensitive fencing", Academia,
     PreventAccess,
     "Micro-op level fence injection between authorization and "
     "protected access (Taram et al.).",
     kPredictionFamily},
    {Sabc, "Secure Automatic Bounds Checking (SABC)", Academia,
     PreventAccess,
     "Inserts arithmetic data dependencies between the bounds check "
     "and the access (Ojogbo et al.).",
     kBoundsFamily},
    {SpectreGuard, "SpectreGuard", Academia, PreventUse,
     "Software-marked secret regions; speculative loads of marked "
     "data are not forwarded to dependents (Fustos et al.).",
     kCacheChannelFamily},
    {Nda, "NDA", Academia, PreventUse,
     "No speculative data propagation: speculatively loaded values "
     "are not forwarded until the load is safe (Weisse et al.).",
     kCacheChannelFamily},
    {ConTExT, "ConTExT", Academia, PreventUse,
     "Secret memory marked non-transient; such values never enter "
     "transient execution (Schwarz et al.).",
     kCacheChannelFamily},
    {SpecShield, "SpecShield", Academia, PreventUse,
     "Shields speculative data from forwarding to potential covert "
     "channels (Barber et al.).",
     kCacheChannelFamily},
    {SpecShieldErpPlus, "SpecShieldERP+", Academia, PreventSend,
     "Blocks only loads whose address depends on speculative data "
     "(Barber et al.).",
     kCacheChannelFamily},
    {Stt, "Speculative Taint Tracking (STT)", Academia, PreventSend,
     "Taints speculative data and blocks tainted transmit "
     "instructions until authorization (Yu et al.).",
     kCacheChannelFamily},
    {Dawg, "DAWG", Academia, PreventSend,
     "Way-partitioned cache: the sender's state change is invisible "
     "to receivers in other protection domains (Kiriansky et al.).",
     kCacheChannelFamily},
    {InvisiSpec, "InvisiSpec", Academia, PreventSend,
     "Speculative loads fill a shadow buffer, not the cache; the "
     "cache state change happens only after authorization (Yan et "
     "al.).",
     kCacheChannelFamily},
    {SafeSpec, "SafeSpec", Academia, PreventSend,
     "Shadow structures for speculative state, discarded on squash "
     "(Khasawneh et al.).",
     kCacheChannelFamily},
    {ConditionalSpeculation, "Conditional Speculation", Academia,
     PreventSend,
     "Speculative loads that hit in the cache proceed (no state "
     "change); misses wait for authorization (Li et al.).",
     kCacheChannelFamily},
    {EfficientInvisibleSpeculation,
     "Efficient Invisible Speculative Execution", Academia,
     PreventSend,
     "Selective delay + value prediction for speculative loads "
     "(Sakalis et al.).",
     kCacheChannelFamily},
    {CleanupSpec, "CleanupSpec", Academia, PreventSend,
     "Allows speculative cache changes but undoes them on "
     "mis-speculation (Saileshwar and Qureshi).",
     kCacheChannelFamily},
};

} // anonymous namespace

const DefenseInfo &
defenseInfo(DefenseMechanism mechanism)
{
    for (const DefenseInfo &info : kDefenseTable) {
        if (info.mechanism == mechanism)
            return info;
    }
    throw std::invalid_argument("defenseInfo: unknown mechanism");
}

const std::vector<DefenseMechanism> &
allDefenseMechanisms()
{
    static const std::vector<DefenseMechanism> all = [] {
        std::vector<DefenseMechanism> v;
        for (const DefenseInfo &info : kDefenseTable)
            v.push_back(info.mechanism);
        return v;
    }();
    return all;
}

bool
defenseApplies(DefenseMechanism mechanism, AttackVariant variant)
{
    const DefenseInfo &info = defenseInfo(mechanism);
    for (AttackVariant v : info.designedAgainst) {
        if (v == variant)
            return true;
    }
    return false;
}

std::vector<graph::Edge>
modelDefense(AttackGraph &g, DefenseMechanism mechanism)
{
    return applyDefense(g, defenseInfo(mechanism).strategy);
}

} // namespace specsec::core
