/**
 * @file
 * AttackGraph: a TSG whose vertices carry attack-model roles and
 * attack steps, plus the paper's analyses on top of it:
 *
 *  - missing-security-dependency detection (races between the
 *    authorization node and access/use/send nodes, Theorem 1),
 *  - speculative-window extraction (the red dashed block in Fig. 1),
 *  - secret-flow enumeration (access -> ... -> send chains), and
 *  - the attack-success predicate used to decide whether a defense
 *    (an inserted security dependency) actually blocks the attack,
 *    including the OR-join multi-source semantics of Fig. 4.
 */

#ifndef SPECSEC_CORE_ATTACK_GRAPH_HH
#define SPECSEC_CORE_ATTACK_GRAPH_HH

#include <string>
#include <vector>

#include "graph/race_avoid.hh"
#include "graph/tsg.hh"
#include "node_role.hh"

namespace specsec::core
{

using graph::EdgeKind;
using graph::NodeId;
using graph::Tsg;

/** A race between an authorization and a protected operation. */
struct RaceFinding
{
    NodeId authorization = graph::kInvalidNode;
    NodeId operation = graph::kInvalidNode;
    NodeRole operationRole = NodeRole::Other;

    bool operator==(const RaceFinding &other) const = default;
};

/** One secret flow: a directed chain from a SecretAccess to a Send. */
using SecretFlow = std::vector<NodeId>;

/**
 * An attack graph in the sense of Section IV.
 *
 * Vertices are added with addOperation(); dependency edges with
 * addDependency().  Security dependencies (Definition 2) are ordinary
 * edges of kind EdgeKind::Security added by addSecurityDependency()
 * or by defense strategies (security_dependency.hh).
 */
class AttackGraph
{
  public:
    AttackGraph() = default;

    /** Descriptive name for reports and DOT export. */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Add an operation vertex with its role and step. */
    NodeId addOperation(std::string label, NodeRole role,
                        AttackStep step = AttackStep::Unspecified);

    /**
     * Add a dependency edge u -> v.
     * @return false if rejected (would create a cycle).
     */
    bool addDependency(NodeId u, NodeId v,
                       EdgeKind kind = EdgeKind::Data);

    /**
     * Add a security dependency: authorization must complete before
     * the protected operation (Definition 2).
     */
    bool addSecurityDependency(NodeId authorization,
                               NodeId protected_op);

    /** The underlying TSG (const). */
    const Tsg &tsg() const { return tsg_; }

    /** The underlying TSG (mutable, for defense transformations). */
    Tsg &tsg() { return tsg_; }

    NodeRole role(NodeId u) const;
    AttackStep step(NodeId u) const;
    void setRole(NodeId u, NodeRole role);

    /** All node ids carrying the given role. */
    std::vector<NodeId> nodesWithRole(NodeRole role) const;

    std::vector<NodeId> authorizationNodes() const;
    std::vector<NodeId> secretAccessNodes() const;
    std::vector<NodeId> sendNodes() const;
    std::vector<NodeId> receiveNodes() const;

    /**
     * Find missing security dependencies: every (authorization,
     * operation) pair that races per Theorem 1, where the operation's
     * role is SecretAccess, Use or Send.  These are exactly the red
     * dashed arrows of Figs. 4-8: candidate places to insert a
     * security dependency.
     */
    std::vector<RaceFinding> missingSecurityDependencies() const;

    /**
     * The speculative window: every non-authorization node that races
     * with at least one authorization node (it can execute before the
     * authorization resolves).
     */
    std::vector<NodeId> speculativeWindow() const;

    /**
     * Enumerate secret flows: directed simple paths from a
     * SecretAccess node to a Send node over Data/Address edges.
     */
    std::vector<SecretFlow> secretFlows() const;

    /**
     * Whether a given flow escapes a given authorization: no node on
     * the flow is ordered after the authorization, evaluating paths
     * with all *other* SecretAccess nodes masked out (OR-join
     * semantics for the multi-source graphs of Fig. 4).
     */
    bool flowEscapesAuthorization(const SecretFlow &flow,
                                  NodeId authorization) const;

    /**
     * Whether predictor mistraining still influences the trigger:
     * true when the graph has no mistrain node, or when a path from a
     * mistrain node to a trigger node avoids every PredictorFlush
     * node.  Defense strategy 4 works by cutting this influence.
     */
    bool mistrainInfluenceIntact() const;

    /**
     * The paper's overall success condition: some secret flow escapes
     * some authorization node, and (if the attack relies on predictor
     * mistraining) the mistraining influence is intact.
     */
    bool isVulnerable() const;

  private:
    Tsg tsg_;
    std::string name_ = "attack";
    std::vector<NodeRole> roles_;
    std::vector<AttackStep> steps_;
};

/**
 * A witness for the per-cell analytic verdict (src/verdict/): the
 * attack-success analysis of isVulnerable(), but returning *why* —
 * the first escaping secret flow when the graph is vulnerable, or
 * which analysis killed every flow when it is not.
 */
struct VulnerabilityWitness
{
    bool vulnerable = false;

    /// When vulnerable: the first (grid-deterministic) secret flow
    /// that escapes, and the authorization it escapes.
    SecretFlow flow;
    NodeId authorization = graph::kInvalidNode;

    /// One deterministic evidence line either way ("flow survives:
    /// ..." / "mistrain influence cut ..." / "every secret flow
    /// ordered after ...").
    std::string summary;
};

/** Run the attack-success analysis on @p g and explain the result. */
VulnerabilityWitness analyzeVulnerability(const AttackGraph &g);

/** Render a flow as "label -> label -> ... -> label". */
std::string describeFlow(const AttackGraph &g, const SecretFlow &flow);

/** Render an edge as "label -> label (kind)". */
std::string describeEdge(const AttackGraph &g, const graph::Edge &e);

} // namespace specsec::core

#endif // SPECSEC_CORE_ATTACK_GRAPH_HH
