#include "lint.hh"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "core/security_dependency.hh"
#include "tool/jsonio.hh"
#include "tool/report.hh"
#include "tool/patcher.hh"
#include "uarch/isa.hh"

namespace specsec::lint
{

namespace
{

constexpr const char *kSchemaTag = "specsec-lint-v1";

} // namespace

const std::vector<LintRule> &
rules()
{
    static const std::vector<LintRule> kRules = {
        {"spec-bypass-read", "error",
         "a speculatively-reachable load reads protected memory "
         "before the guarding authorization resolves"},
        {"spec-bypass-write", "error",
         "a speculatively-reachable store clobbers memory before "
         "the guarding authorization resolves"},
        {"intra-instruction-race", "error",
         "a faulting access races its own permission check "
         "(Meltdown-type; software fences cannot close it)"},
        {"stale-forward", "error",
         "a load can consume stale data before store-load address "
         "disambiguation resolves (v4-type)"},
        {"transient-send", "warning",
         "a covert send transmits possibly-secret data before an "
         "authorization resolves (exfiltration half of a leak)"},
    };
    return kRules;
}

const LintRule *
findRule(const std::string &id)
{
    for (const LintRule &r : rules())
        if (id == r.id)
            return &r;
    return nullptr;
}

LintReport
lintAttack(const core::AttackDescriptor &descriptor)
{
    if (!descriptor.staticProgram)
        throw std::invalid_argument("attack '" + descriptor.name +
                                    "' has no static program");
    const core::StaticProgramSpec spec = descriptor.staticProgram();
    const tool::AnalysisSpec as = tool::toAnalysisSpec(spec);
    const tool::AnalysisResult analysis = tool::analyzeSpec(as);

    LintReport report;
    report.attack = descriptor.name;
    report.vulnerable = analysis.vulnerable;
    for (const tool::Finding &f : analysis.findings) {
        LintFinding lf;
        const LintRule *rule = nullptr;
        const std::string &auth =
            analysis.graph.tsg().label(f.authorization);
        if (f.operationRole == core::NodeRole::Send)
            rule = findRule("transient-send");
        else if (auth.find("disambiguation") != std::string::npos)
            rule = findRule("stale-forward");
        else if (f.authPc && f.accessPc && *f.authPc == *f.accessPc)
            rule = findRule("intra-instruction-race");
        else if (f.accessPc && *f.accessPc < as.program.size() &&
                 uarch::isStore(as.program.at(*f.accessPc).op))
            rule = findRule("spec-bypass-write");
        else
            rule = findRule("spec-bypass-read");
        lf.rule = rule->id;
        lf.severity = rule->severity;
        lf.authPc = f.authPc ? static_cast<std::int64_t>(*f.authPc) : -1;
        lf.accessPc =
            f.accessPc ? static_cast<std::int64_t>(*f.accessPc) : -1;
        if (f.accessPc && *f.accessPc < as.program.size())
            lf.instruction =
                uarch::disassemble(as.program.at(*f.accessPc));
        lf.witness = f.description;
        lf.suggested = core::defenseStrategyName(f.suggested);
        report.findings.push_back(std::move(lf));
    }
    return report;
}

std::string
lintFileSlug(const std::string &attack_name)
{
    std::string slug;
    bool pendingDash = false;
    for (char c : attack_name) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (std::isalnum(u)) {
            if (pendingDash && !slug.empty())
                slug.push_back('-');
            pendingDash = false;
            slug.push_back(
                static_cast<char>(std::tolower(u)));
        } else {
            pendingDash = true;
        }
    }
    return slug;
}

std::string
lintReportJson(const LintReport &report)
{
    std::ostringstream os;
    os << "{\n \"schema\": \"" << kSchemaTag << "\",\n \"attack\": \""
       << tool::jsonEscape(report.attack) << "\",\n \"vulnerable\": "
       << (report.vulnerable ? "true" : "false")
       << ",\n \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const LintFinding &f = report.findings[i];
        os << (i ? ",\n  " : "\n  ") << "{\"rule\": \""
           << tool::jsonEscape(f.rule) << "\", \"severity\": \""
           << tool::jsonEscape(f.severity) << "\",\n   \"authPc\": "
           << f.authPc << ", \"accessPc\": " << f.accessPc
           << ",\n   \"instruction\": \""
           << tool::jsonEscape(f.instruction)
           << "\",\n   \"witness\": \"" << tool::jsonEscape(f.witness)
           << "\",\n   \"suggested\": \""
           << tool::jsonEscape(f.suggested) << "\"}";
    }
    os << (report.findings.empty() ? "]" : "\n ]") << "\n}\n";
    return os.str();
}

std::optional<LintReport>
parseLintReportJson(const std::string &text, std::string *error)
{
    tool::json::Cursor c(text);
    LintReport report;
    bool sawSchema = false;

    c.expect('{');
    while (!c.failed()) {
        const std::string key = c.parseString();
        c.expect(':');
        if (key == "schema") {
            if (c.parseString() != kSchemaTag)
                c.fail("unsupported lint schema");
            sawSchema = true;
        } else if (key == "attack") {
            report.attack = c.parseString();
        } else if (key == "vulnerable") {
            report.vulnerable = c.parseBool();
        } else if (key == "findings") {
            c.expect('[');
            if (!c.peekConsume(']')) {
                do {
                    LintFinding f;
                    c.expect('{');
                    while (!c.failed()) {
                        const std::string fk = c.parseString();
                        c.expect(':');
                        if (fk == "rule")
                            f.rule = c.parseString();
                        else if (fk == "severity")
                            f.severity = c.parseString();
                        else if (fk == "authPc")
                            f.authPc = c.parseI64();
                        else if (fk == "accessPc")
                            f.accessPc = c.parseI64();
                        else if (fk == "instruction")
                            f.instruction = c.parseString();
                        else if (fk == "witness")
                            f.witness = c.parseString();
                        else if (fk == "suggested")
                            f.suggested = c.parseString();
                        else
                            c.fail("unknown finding key '" + fk + "'");
                        if (!c.peekConsume(','))
                            break;
                    }
                    c.expect('}');
                    report.findings.push_back(std::move(f));
                } while (c.peekConsume(','));
                c.expect(']');
            }
        } else {
            c.fail("unknown report key '" + key + "'");
        }
        if (!c.peekConsume(','))
            break;
    }
    c.expect('}');
    if (!c.failed() && !c.atEnd())
        c.fail("trailing content after report");
    if (!c.failed() && !sawSchema)
        c.fail("missing schema tag");
    if (c.failed()) {
        if (error != nullptr)
            *error = c.error();
        return std::nullopt;
    }
    return report;
}

namespace
{

std::string
findingKey(const LintFinding &f)
{
    std::ostringstream os;
    os << f.rule << " @ auth=" << f.authPc << " access=" << f.accessPc;
    return os.str();
}

} // namespace

std::vector<std::string>
compareLintReports(const LintReport &pinned, const LintReport &fresh)
{
    std::vector<std::string> drift;
    if (pinned.attack != fresh.attack)
        drift.push_back("attack name changed: pinned '" +
                        pinned.attack + "', fresh '" + fresh.attack +
                        "'");
    if (pinned.vulnerable != fresh.vulnerable)
        drift.push_back(
            std::string("verdict flipped: pinned ") +
            (pinned.vulnerable ? "vulnerable" : "safe") + ", fresh " +
            (fresh.vulnerable ? "vulnerable" : "safe"));

    std::vector<bool> matched(pinned.findings.size(), false);
    for (const LintFinding &f : fresh.findings) {
        bool found = false;
        for (std::size_t i = 0; i < pinned.findings.size(); ++i) {
            const LintFinding &p = pinned.findings[i];
            if (matched[i] || findingKey(p) != findingKey(f))
                continue;
            matched[i] = true;
            found = true;
            if (p != f) {
                std::string detail;
                if (p.severity != f.severity)
                    detail += " severity '" + p.severity + "' -> '" +
                              f.severity + "';";
                if (p.instruction != f.instruction)
                    detail += " instruction '" + p.instruction +
                              "' -> '" + f.instruction + "';";
                if (p.witness != f.witness)
                    detail += " witness '" + p.witness + "' -> '" +
                              f.witness + "';";
                if (p.suggested != f.suggested)
                    detail += " suggested '" + p.suggested + "' -> '" +
                              f.suggested + "';";
                drift.push_back("finding changed [" + findingKey(f) +
                                "]:" + detail);
            }
            break;
        }
        if (!found)
            drift.push_back("unpinned finding [" + findingKey(f) +
                            "]: " + f.witness);
    }
    for (std::size_t i = 0; i < pinned.findings.size(); ++i)
        if (!matched[i])
            drift.push_back("pinned finding vanished [" +
                            findingKey(pinned.findings[i]) +
                            "]: " + pinned.findings[i].witness);
    return drift;
}

} // namespace specsec::lint
