/**
 * @file
 * specsec_lint: the static leak lint CLI.
 *
 *   specsec_lint --list-rules
 *   specsec_lint --show <attack>
 *   specsec_lint --check  [--golden-dir DIR] [attack ...]
 *   specsec_lint --record [--golden-dir DIR] [attack ...]
 *
 * --check re-analyzes every targeted attack's static program and
 * compares the classified findings finding-by-finding against the
 * committed golden/lint-<slug>.json pins; --record rewrites them.
 * With no attack arguments, every catalog attack exposing a static
 * program is targeted.  Exit codes: 0 clean, 1 drift or missing
 * pin, 2 usage error.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/catalog.hh"
#include "lint/lint.hh"

namespace
{

using namespace specsec;

int
usage(std::ostream &os, int code)
{
    os << "usage: specsec_lint --list-rules\n"
          "       specsec_lint --show <attack>\n"
          "       specsec_lint --check  [--golden-dir DIR] "
          "[attack ...]\n"
          "       specsec_lint --record [--golden-dir DIR] "
          "[attack ...]\n";
    return code;
}

int
listRules()
{
    for (const lint::LintRule &r : lint::rules())
        std::cout << r.id << "  [" << r.severity << "]  " << r.summary
                  << "\n";
    return 0;
}

std::string
goldenPath(const std::string &dir, const std::string &attack)
{
    return dir + "/lint-" + lint::lintFileSlug(attack) + ".json";
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

/** Resolve attack args (or default to every static-program attack). */
int
resolveTargets(const std::vector<std::string> &args,
               std::vector<const core::AttackDescriptor *> &out)
{
    core::ScenarioCatalog &catalog = core::ScenarioCatalog::instance();
    if (args.empty()) {
        for (const core::AttackDescriptor *d : catalog.attacks())
            if (d->staticProgram)
                out.push_back(d);
        return 0;
    }
    for (const std::string &name : args) {
        const core::AttackDescriptor *d = catalog.findAttack(name);
        if (d == nullptr) {
            std::cerr << core::unknownNameMessage(
                             "attack", name,
                             catalog.attackSuggestions(name))
                      << "\n";
            return 2;
        }
        if (!d->staticProgram) {
            std::cerr << "attack '" << d->name
                      << "' has no static program to lint\n";
            return 2;
        }
        out.push_back(d);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode;
    std::string goldenDir = "golden";
    std::vector<std::string> attackArgs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules" || arg == "--show" ||
            arg == "--check" || arg == "--record") {
            if (!mode.empty())
                return usage(std::cerr, 2);
            mode = arg;
        } else if (arg == "--golden-dir") {
            if (++i >= argc)
                return usage(std::cerr, 2);
            goldenDir = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        } else {
            attackArgs.push_back(arg);
        }
    }
    if (mode.empty())
        return usage(std::cerr, 2);
    if (mode == "--list-rules")
        return listRules();
    if (mode == "--show" && attackArgs.size() != 1)
        return usage(std::cerr, 2);

    std::vector<const core::AttackDescriptor *> targets;
    if (int rc = resolveTargets(attackArgs, targets); rc != 0)
        return rc;

    if (mode == "--show") {
        std::cout << lint::lintReportJson(
            lint::lintAttack(*targets.front()));
        return 0;
    }

    std::size_t failures = 0;
    std::size_t findings = 0;
    for (const core::AttackDescriptor *d : targets) {
        const lint::LintReport fresh = lint::lintAttack(*d);
        findings += fresh.findings.size();
        const std::string path = goldenPath(goldenDir, d->name);
        if (mode == "--record") {
            std::ofstream out(path, std::ios::binary);
            if (!out) {
                std::cerr << "cannot write " << path << "\n";
                return 2;
            }
            out << lint::lintReportJson(fresh);
            std::cout << "recorded " << path << " ("
                      << fresh.findings.size() << " findings)\n";
            continue;
        }
        std::string text;
        if (!readFile(path, text)) {
            std::cerr << d->name << ": missing lint pin " << path
                      << " (run --record)\n";
            ++failures;
            continue;
        }
        std::string error;
        const auto pinned = lint::parseLintReportJson(text, &error);
        if (!pinned) {
            std::cerr << d->name << ": unreadable lint pin " << path
                      << ": " << error << "\n";
            ++failures;
            continue;
        }
        const std::vector<std::string> drift =
            lint::compareLintReports(*pinned, fresh);
        for (const std::string &line : drift)
            std::cerr << d->name << ": " << line << "\n";
        failures += drift.empty() ? 0 : 1;
    }
    if (mode == "--check") {
        if (failures != 0) {
            std::cerr << "lint: " << failures << " of "
                      << targets.size() << " attacks drifted\n";
            return 1;
        }
        std::cout << "lint: " << targets.size() << " attacks, "
                  << findings << " pinned findings, clean\n";
    }
    return 0;
}
