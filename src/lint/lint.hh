/**
 * @file
 * Static leak lint: stable, schema-declared findings over the Fig. 9
 * analyzer's output for every catalog attack with a static program.
 *
 * Each missing security dependency the analyzer reports (a Theorem 1
 * race) is classified under a fixed rule id with a severity, the
 * program location of the racing access, and the witness description
 * of the race.  Reports serialize to JSON ("specsec-lint-v1"),
 * commit under golden/lint-*.json, and are compared finding-by-
 * finding like the success-matrix goldens — the analyzer's verdict
 * over the whole catalog is pinned in CI, not just unit-tested.
 */

#ifndef SPECSEC_LINT_LINT_HH
#define SPECSEC_LINT_LINT_HH

#include <optional>
#include <string>
#include <vector>

#include "core/catalog.hh"

namespace specsec::lint
{

/** One declared lint rule. */
struct LintRule
{
    const char *id;       ///< stable kebab-case rule id
    const char *severity; ///< "error" | "warning"
    const char *summary;  ///< one-line description
};

/** All declared rules, in severity-then-definition order. */
const std::vector<LintRule> &rules();

/** @return the rule with @p id, or nullptr. */
const LintRule *findRule(const std::string &id);

/** One classified finding (a missing security dependency). */
struct LintFinding
{
    std::string rule;
    std::string severity;
    /// pc of the authorization / racing access; -1 when the node has
    /// no program location (synthetic receiver).
    std::int64_t authPc = -1;
    std::int64_t accessPc = -1;
    /// Disassembly of the instruction at accessPc.
    std::string instruction;
    /// The analyzer's race description (witness path endpoints).
    std::string witness;
    /// Cheapest paper strategy whose dependency closes the race.
    std::string suggested;

    bool operator==(const LintFinding &) const = default;
};

/** The lint report for one attack's static program. */
struct LintReport
{
    std::string attack;      ///< canonical catalog name
    bool vulnerable = false; ///< analyzer's overall verdict
    std::vector<LintFinding> findings;
};

/**
 * Run the analyzer over @p descriptor's static program and classify
 * every finding.  @p descriptor must have the staticProgram hook.
 */
LintReport lintAttack(const core::AttackDescriptor &descriptor);

/** Stable file slug for an attack name:
 *  "Meltdown (Spectre v3)" -> "meltdown-spectre-v3". */
std::string lintFileSlug(const std::string &attack_name);

/** Serialize a report ("specsec-lint-v1", trailing newline). */
std::string lintReportJson(const LintReport &report);

/**
 * Strict parse of a serialized report: unknown keys and a missing
 * or foreign schema tag fail.  On failure returns nullopt and sets
 * @p error when non-null.
 */
std::optional<LintReport>
parseLintReportJson(const std::string &text, std::string *error);

/**
 * Finding-by-finding comparison, analogous to the differential
 * pins: one drift line per unpinned / changed / vanished finding
 * and per verdict flip.  Empty means the reports agree.
 */
std::vector<std::string> compareLintReports(const LintReport &pinned,
                                            const LintReport &fresh);

} // namespace specsec::lint

#endif // SPECSEC_LINT_LINT_HH
