/**
 * @file
 * The simulator's instruction set.
 *
 * A small RISC-style ISA that covers every operation class the
 * paper's attack listings use: loads/stores (byte and word),
 * conditional and indirect branches, call/return, cache flush,
 * fences, privileged system-register reads, floating-point register
 * moves, a cycle counter and TSX-style transaction brackets.
 * Branch targets are absolute instruction indices.
 */

#ifndef SPECSEC_UARCH_ISA_HH
#define SPECSEC_UARCH_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace specsec::uarch
{

using Addr = std::uint64_t;
using Word = std::uint64_t;
using RegId = std::uint8_t;

/** Number of general-purpose integer registers (r0..r15). */
constexpr std::size_t kNumIntRegs = 16;

/** Number of floating-point registers (f0..f7). */
constexpr std::size_t kNumFpRegs = 8;

/** Number of model-specific (system) registers. */
constexpr std::size_t kNumMsrs = 16;

/** Operation codes. */
enum class Opcode : std::uint8_t
{
    Nop,
    Halt,
    MovImm, ///< rd <- imm
    Mov,    ///< rd <- ra
    Add,    ///< rd <- ra + rb
    Sub,    ///< rd <- ra - rb
    And,    ///< rd <- ra & rb
    Or,     ///< rd <- ra | rb
    Xor,    ///< rd <- ra ^ rb
    Shl,    ///< rd <- ra << rb
    Shr,    ///< rd <- ra >> rb
    AddImm, ///< rd <- ra + imm
    AndImm, ///< rd <- ra & imm
    ShlImm, ///< rd <- ra << imm
    ShrImm, ///< rd <- ra >> imm
    MulImm, ///< rd <- ra * imm
    Load,   ///< rd <- mem[ra + imm]  (size bytes, zero-extended)
    Store,  ///< mem[ra + imm] <- rb  (size bytes)
    Branch, ///< if cond(ra, rb): pc <- imm else fall through
    Jmp,    ///< pc <- imm
    JmpInd, ///< pc <- ra  (predicted via BTB)
    Call,   ///< push pc+1; pc <- imm  (predicted push to RSB)
    Ret,    ///< pc <- pop()  (predicted via RSB)
    Clflush,///< flush cache line at mem[ra + imm]
    Lfence, ///< younger instructions wait for all older to complete
    Mfence, ///< lfence + store buffer drained
    RdMsr,  ///< rd <- msr[imm]  (requires kernel privilege)
    FpMov,  ///< f[rd] <- ra
    FpRead, ///< rd <- f[ra]
    RdTsc,  ///< rd <- current cycle
    XBegin, ///< start transaction; abort redirects to imm
    XEnd,   ///< end transaction
};

/** Branch conditions (comparing ra with rb). */
enum class Cond : std::uint8_t
{
    Eq,
    Ne,
    Lt,  ///< signed less-than
    Ge,  ///< signed greater-or-equal
    Ltu, ///< unsigned less-than
    Geu, ///< unsigned greater-or-equal
};

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId rd = 0;
    RegId ra = 0;
    RegId rb = 0;
    std::int64_t imm = 0;
    Cond cond = Cond::Eq;
    std::uint8_t size = 8; ///< memory access size in bytes (1 or 8)
};

/** @return stable mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** @return a disassembly string such as "load r3, [r1 + 0x40]". */
std::string disassemble(const Instruction &inst);

/** @name Instruction factories
 *  @{ */
Instruction nop();
Instruction halt();
Instruction movImm(RegId rd, std::int64_t imm);
Instruction mov(RegId rd, RegId ra);
Instruction add(RegId rd, RegId ra, RegId rb);
Instruction sub(RegId rd, RegId ra, RegId rb);
Instruction andr(RegId rd, RegId ra, RegId rb);
Instruction orr(RegId rd, RegId ra, RegId rb);
Instruction xorr(RegId rd, RegId ra, RegId rb);
Instruction shl(RegId rd, RegId ra, RegId rb);
Instruction shr(RegId rd, RegId ra, RegId rb);
Instruction addImm(RegId rd, RegId ra, std::int64_t imm);
Instruction andImm(RegId rd, RegId ra, std::int64_t imm);
Instruction shlImm(RegId rd, RegId ra, std::int64_t imm);
Instruction shrImm(RegId rd, RegId ra, std::int64_t imm);
Instruction mulImm(RegId rd, RegId ra, std::int64_t imm);
Instruction load8(RegId rd, RegId ra, std::int64_t offset);
Instruction load64(RegId rd, RegId ra, std::int64_t offset);
Instruction store8(RegId ra, std::int64_t offset, RegId rb);
Instruction store64(RegId ra, std::int64_t offset, RegId rb);
Instruction branch(Cond cond, RegId ra, RegId rb, std::int64_t target);
Instruction jmp(std::int64_t target);
Instruction jmpInd(RegId ra);
Instruction call(std::int64_t target);
Instruction ret();
Instruction clflush(RegId ra, std::int64_t offset);
Instruction lfence();
Instruction mfence();
Instruction rdmsr(RegId rd, std::int64_t msr);
Instruction fpMov(RegId fd, RegId ra);
Instruction fpRead(RegId rd, RegId fa);
Instruction rdtsc(RegId rd);
Instruction xbegin(std::int64_t abort_target);
Instruction xend();
/** @} */

/** @return true if the opcode reads memory. */
bool isLoad(Opcode op);
/** @return true if the opcode writes memory. */
bool isStore(Opcode op);
/** @return true if the opcode changes control flow. */
bool isControl(Opcode op);
/** @return true if the instruction writes an integer register. */
bool writesIntReg(const Instruction &inst);

/**
 * An assembled program: a vector of instructions plus forward-label
 * support.  Instruction addresses are indices into the program.
 */
class Program
{
  public:
    /** A patchable jump/branch target. */
    struct Label
    {
        std::size_t id = 0;
    };

    /** Append an instruction; @return its address. */
    std::size_t emit(const Instruction &inst);

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current end of the program. */
    void bind(Label label);

    /** Emit a conditional branch to a (possibly unbound) label. */
    std::size_t emitBranch(Cond cond, RegId ra, RegId rb, Label target);

    /** Emit an unconditional jump to a label. */
    std::size_t emitJmp(Label target);

    /** Emit a call to a label. */
    std::size_t emitCall(Label target);

    /** Emit an xbegin whose abort handler is a label. */
    std::size_t emitXBegin(Label abort_target);

    /** @return the instruction at @p pc. */
    const Instruction &at(std::size_t pc) const { return code_.at(pc); }

    /** Mutable access, for patching by defense transforms. */
    Instruction &at(std::size_t pc) { return code_.at(pc); }

    /** Insert an instruction at @p pc, fixing up absolute targets. */
    void insertAt(std::size_t pc, const Instruction &inst);

    std::size_t size() const { return code_.size(); }
    bool empty() const { return code_.empty(); }

    /** @throws std::logic_error if any label is still unbound. */
    void finalize() const;

    /** @return full program disassembly, one instruction per line. */
    std::string disassembleAll() const;

  private:
    std::vector<Instruction> code_;
    std::vector<std::int64_t> labelTargets_; ///< -1 while unbound
    struct Fixup
    {
        std::size_t pc;
        std::size_t labelId;
    };
    std::vector<Fixup> fixups_;
};

} // namespace specsec::uarch

#endif // SPECSEC_UARCH_ISA_HH
