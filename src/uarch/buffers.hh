/**
 * @file
 * The leaky micro-architectural buffers of the MDS-family attacks:
 * store buffer (Fallout, Spectre v4, Spoiler), line fill buffer
 * (RIDL, ZombieLoad, CacheOut), load port (RIDL) and the lazily
 * switched FPU register file (LazyFP).
 *
 * Each buffer retains *residue*: stale data from recent operations
 * that a faulting load can transiently forward on a vulnerable
 * machine.  The VERW-style defense clears residues on context
 * switch.
 */

#ifndef SPECSEC_UARCH_BUFFERS_HH
#define SPECSEC_UARCH_BUFFERS_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "isa.hh"

namespace specsec::uarch
{

/** One pending (not yet committed) store. */
struct StoreBufferEntry
{
    std::uint64_t seq = 0;    ///< ROB sequence of the owning store
    Addr vaddr = 0;
    Addr paddr = 0;
    bool addrReady = false;
    Word data = 0;
    bool dataReady = false;
    std::uint8_t size = 8;
};

/**
 * The store buffer: program-ordered pending stores with
 * store-to-load forwarding, partial-address (4KB-aliased) matching
 * for the Spoiler timing model, and data residue for Fallout.
 */
class StoreBuffer
{
  public:
    /** Allocate an entry for the store with ROB sequence @p seq. */
    void allocate(std::uint64_t seq, std::uint8_t size);

    /** Record the resolved address of store @p seq. */
    void setAddress(std::uint64_t seq, Addr vaddr, Addr paddr);

    /** Record the data of store @p seq. */
    void setData(std::uint64_t seq, Word data);

    /** Remove entries of squashed stores (seq > @p last_kept). */
    void squashAfter(std::uint64_t last_kept);

    /** Pop the oldest entry at commit; @return it for draining. */
    std::optional<StoreBufferEntry> drainOldest(std::uint64_t seq);

    /**
     * Store-to-load forwarding: youngest entry older than
     * @p load_seq with a resolved address covering [paddr,
     * paddr+size).  Only exact-size containment forwards.
     */
    std::optional<Word> forward(std::uint64_t load_seq, Addr paddr,
                                std::uint8_t size) const;

    /**
     * @return true if any store older than @p load_seq has an
     *         unresolved address (disambiguation incomplete).
     */
    bool hasUnresolvedOlder(std::uint64_t load_seq) const;

    /**
     * @return true if an older resolved store overlaps
     *         [paddr, paddr+size) but cannot fully forward it
     *         (partial overlap, or its data is not ready): the load
     *         must wait for the store to drain.
     */
    bool mustStallLoad(std::uint64_t load_seq, Addr paddr,
                       std::uint8_t size) const;

    /**
     * Spoiler model: true if an older store's resolved address
     * matches @p vaddr in the low 12 bits but differs in full
     * address (a false 4KB-aliased dependency).
     */
    bool partialAliasOlder(std::uint64_t load_seq, Addr vaddr) const;

    /**
     * Spoiler model: true if additionally the *physical* addresses
     * match in the low 20 bits (1MB aliasing), the slow-rehazard
     * case Spoiler measures.
     */
    bool physAliasOlder(std::uint64_t load_seq, Addr paddr) const;

    /** Fallout residue: the most recent store's data and address. */
    struct Residue
    {
        Addr vaddr = 0;
        Word data = 0;
    };

    /** Most recent store data (pending or drained): Fallout residue. */
    std::optional<Residue> residue() const { return residue_; }

    /** Clear residue (VERW defense). */
    void clearResidue() { residue_.reset(); }

    std::size_t pending() const { return entries_.size(); }

  private:
    StoreBufferEntry *findBySeq(std::uint64_t seq);

    std::deque<StoreBufferEntry> entries_;
    std::optional<Residue> residue_;
};

/**
 * Line fill buffer: a small ring of recent fills whose data lingers
 * after completion (RIDL / ZombieLoad / CacheOut residue).
 */
class LineFillBuffer
{
  public:
    explicit LineFillBuffer(std::size_t entries) : capacity_(entries) {}

    /** Record a fill of @p data for the line containing @p paddr. */
    void recordFill(Addr paddr, Word data);

    /** Most recent fill data still lingering in the buffer. */
    std::optional<Word> residue() const;

    /** Clear all residues (VERW defense). */
    void clear();

    std::size_t size() const { return fills_.size(); }

  private:
    struct Fill
    {
        Addr paddr;
        Word data;
    };
    std::size_t capacity_;
    std::deque<Fill> fills_;
};

/** Load port: retains the last value that crossed it (RIDL). */
class LoadPort
{
  public:
    void record(Word data) { residue_ = data; }
    std::optional<Word> residue() const { return residue_; }
    void clear() { residue_.reset(); }

  private:
    std::optional<Word> residue_;
};

/**
 * FPU register file with lazy context switching.
 *
 * With lazy switching (the historical default), a context switch
 * leaves the registers in place and only flags the new context as
 * not owning them; the first FP instruction faults (and on a
 * vulnerable machine transiently reads the previous context's
 * values: LazyFP).  Eager switching saves/restores per context.
 */
class FpuState
{
  public:
    FpuState();

    int owner() const { return owner_; }

    Word read(std::size_t reg) const;
    void write(std::size_t reg, Word value);

    /**
     * Context switch.
     * @param eager Save current registers and load @p new_ctx's
     *        (defense); otherwise lazy: registers keep the old
     *        context's values and owner() != current context.
     */
    void contextSwitch(int new_ctx, bool eager);

    /**
     * Resolve a lazy-FPU fault the way an OS handler would: save the
     * old owner's registers, load @p ctx's, take ownership.
     */
    void takeOwnership(int ctx);

  private:
    /** Saved register file for @p ctx, or nullptr. */
    std::array<Word, kNumFpRegs> *findSaved(int ctx);

    std::array<Word, kNumFpRegs> regs_{};
    int owner_ = 0;
    // A scenario touches two or three context ids, so the save area
    // is a small flat vector searched linearly — no hashing on the
    // context-switch path.
    std::vector<std::pair<int, std::array<Word, kNumFpRegs>>> saved_;
};

} // namespace specsec::uarch

#endif // SPECSEC_UARCH_BUFFERS_HH
