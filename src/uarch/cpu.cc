#include "cpu.hh"

#include <algorithm>
#include <limits>

namespace specsec::uarch
{

namespace
{

/** Sentinel prediction for serialized (non-speculated) control. */
constexpr Addr kNoPred = std::numeric_limits<Addr>::max();

/** Does the opcode carry a delayed authorization check? */
bool
needsAuth(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store ||
           op == Opcode::RdMsr || op == Opcode::FpRead ||
           op == Opcode::FpMov;
}

/** Is the opcode control flow that resolves after dispatch? */
bool
lateControl(Opcode op)
{
    return op == Opcode::Branch || op == Opcode::JmpInd ||
           op == Opcode::Ret;
}

} // anonymous namespace

Cpu::Cpu(const CpuConfig &config, Memory &memory, PageTable &pt)
    : config_(config), mem_(memory), pt_(pt), cache_(config.cache),
      rsb_(config.rsbDepth), lfb_(config.lfbEntries),
      rob_(config.robSize)
{
    cache_.setPartitioned(config_.defense.partitionedCache);
}

void
Cpu::loadProgram(const Program &program)
{
    program.finalize();
    program_ = program;
}

void
Cpu::copyStateFrom(const Cpu &other)
{
    // Everything except the Memory/PageTable references, which stay
    // bound to this core's arena.  See the header comment: keep this
    // list in sync with the member declarations.
    config_ = other.config_;
    cache_ = other.cache_;
    bp_ = other.bp_;
    btb_ = other.btb_;
    rsb_ = other.rsb_;
    sb_ = other.sb_;
    lfb_ = other.lfb_;
    loadPort_ = other.loadPort_;
    fpu_ = other.fpu_;
    program_ = other.program_;
    regs_ = other.regs_;
    msrs_ = other.msrs_;
    privilege_ = other.privilege_;
    enclaveMode_ = other.enclaveMode_;
    ctx_ = other.ctx_;
    faultHandler_ = other.faultHandler_;
    retExtraDelay_ = other.retExtraDelay_;
    rob_ = other.rob_;
    seqCounter_ = other.seqCounter_;
    robPops_ = other.robPops_;
    fencesInRob_ = other.fencesInRob_;
    rename_ = other.rename_;
    archCallStack_ = other.archCallStack_;
    fetchPc_ = other.fetchPc_;
    fetchHalted_ = other.fetchHalted_;
    cycle_ = other.cycle_;
    pendingException_ = other.pendingException_;
    fetchStallSeq_ = other.fetchStallSeq_;
    txnActive_ = other.txnActive_;
    fetchInTxn_ = other.fetchInTxn_;
    txnAbortTarget_ = other.txnAbortTarget_;
    runHalted_ = other.runHalted_;
    runFaulted_ = other.runFaulted_;
    lastFault_ = other.lastFault_;
    lastFaultPc_ = other.lastFaultPc_;
    stats_ = other.stats_;
}

void
Cpu::contextSwitch(int ctx)
{
    ctx_ = ctx;
    fpu_.contextSwitch(ctx, config_.defense.eagerFpuSwitch);
    if (config_.defense.flushPredictorOnContextSwitch)
        ibpb();
    if (config_.defense.clearBuffersOnContextSwitch) {
        sb_.clearResidue();
        lfb_.clear();
        loadPort_.clear();
    }
}

void
Cpu::ibpb()
{
    bp_.flush();
    btb_.flush();
    rsb_.flush();
}

std::uint32_t
Cpu::timedAccess(Addr vaddr)
{
    const Translation t =
        pt_.translate(vaddr, AccessType::Read, privilege_,
                      enclaveMode_);
    if (t.fault != FaultKind::None || !t.paddrValid)
        return config_.cache.missLatency * 2;
    return cache_.access(t.paddr, ctx_, true).latency;
}

std::uint32_t
Cpu::timedProbe(Addr vaddr)
{
    const Translation t =
        pt_.translate(vaddr, AccessType::Read, privilege_,
                      enclaveMode_);
    if (t.fault != FaultKind::None || !t.paddrValid)
        return config_.cache.missLatency * 2;
    return cache_.access(t.paddr, ctx_, false).latency;
}

void
Cpu::flushLineVirt(Addr vaddr)
{
    if (const Pte *pte = pt_.lookup(vaddr)) {
        cache_.flushLine(pte->physPage * kPageSize +
                         (vaddr % kPageSize));
    }
}

void
Cpu::warmLine(Addr vaddr)
{
    if (const Pte *pte = pt_.lookup(vaddr)) {
        cache_.access(pte->physPage * kPageSize + (vaddr % kPageSize),
                      ctx_, true);
    }
}

Cpu::RobEntry *
Cpu::findBySeq(std::uint64_t seq)
{
    const auto index = indexOfSeq(seq);
    return index ? &rob_[*index] : nullptr;
}

const Cpu::RobEntry *
Cpu::findBySeq(std::uint64_t seq) const
{
    return const_cast<Cpu *>(this)->findBySeq(seq);
}

std::optional<std::size_t>
Cpu::indexOfSeq(std::uint64_t seq) const
{
    // ROB order is seq order: dispatch appends strictly increasing
    // seqs, commit pops the front, squash drops a suffix.  Binary
    // search instead of the old linear scan.
    std::size_t lo = 0, hi = rob_.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (rob_[mid].seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < rob_.size() && rob_[lo].seq == seq)
        return lo;
    return std::nullopt;
}

bool
Cpu::underOlderSpeculation(std::size_t index) const
{
    for (std::size_t i = 0; i < index && i < rob_.size(); ++i) {
        const RobEntry &e = rob_[i];
        if (lateControl(e.inst.op) && !e.resolved)
            return true;
        if (needsAuth(e.inst.op) &&
            (!e.authDone || e.fault != FaultKind::None)) {
            return true;
        }
        if (e.inst.op == Opcode::Store && !e.addrDone)
            return true;
    }
    return false;
}

bool
Cpu::entrySafe(const RobEntry &e, std::size_t index) const
{
    if (e.fault != FaultKind::None)
        return false;
    if (needsAuth(e.inst.op) && !e.authDone)
        return false;
    return !underOlderSpeculation(index);
}

bool
Cpu::taintLive(std::uint64_t source_seq) const
{
    const auto index = indexOfSeq(source_seq);
    if (!index)
        return false; // committed (safe) or squashed (moot)
    return !entrySafe(rob_[*index], *index);
}

void
Cpu::rebuildRename()
{
    rename_.fill(std::nullopt);
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        const RobEntry &e = rob_[i];
        if (writesIntReg(e.inst))
            rename_[e.inst.rd] = RenameRef{e.seq, robPops_ + i};
    }
}

void
Cpu::recomputeFetchTxn()
{
    fetchInTxn_ = txnActive_;
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        const Opcode op = rob_[i].inst.op;
        if (op == Opcode::XBegin)
            fetchInTxn_ = true;
        else if (op == Opcode::XEnd)
            fetchInTxn_ = false;
    }
}

void
Cpu::squashFrom(std::size_t first_removed, Addr redirect_pc)
{
    if (first_removed < rob_.size()) {
        const std::uint64_t boundary_seq =
            first_removed == 0 ? 0 : rob_[first_removed - 1].seq;
        for (std::size_t i = first_removed; i < rob_.size(); ++i) {
            RobEntry &e = rob_[i];
            ++stats_.squashed;
            // Architectural rollback is implicit (commit never
            // happened).  Cache state stays -- unless CleanupSpec
            // undoes lines the squashed loads installed.
            if (e.insertedLine && config_.defense.cleanupSpec)
                cache_.flushLine(e.insertedLineAddr);
            if (e.inst.op == Opcode::Lfence ||
                e.inst.op == Opcode::Mfence) {
                --fencesInRob_;
            }
        }
        rob_.truncate(first_removed);
        sb_.squashAfter(boundary_seq);
    }
    rebuildRename();
    fetchPc_ = redirect_pc;
    fetchHalted_ = false;
    fetchStallSeq_.reset();
    recomputeFetchTxn();
}

Word
Cpu::selectResidue(Addr vaddr) const
{
    // Fallout: a store-buffer entry whose page offset matches the
    // faulting load's is forwarded preferentially.
    if (const auto sb_res = sb_.residue()) {
        if ((sb_res->vaddr & (kPageSize - 1)) ==
            (vaddr & (kPageSize - 1))) {
            return sb_res->data;
        }
    }
    // RIDL / ZombieLoad / CacheOut: line fill buffer residue.
    if (const auto lfb_res = lfb_.residue())
        return *lfb_res;
    // RIDL: load port residue.
    if (const auto lp_res = loadPort_.residue())
        return *lp_res;
    if (const auto sb_res = sb_.residue())
        return sb_res->data;
    return 0;
}

Addr
Cpu::retActualTarget(std::size_t ret_index) const
{
    std::vector<Addr> stack = archCallStack_;
    for (std::size_t i = 0; i < ret_index && i < rob_.size(); ++i) {
        const RobEntry &e = rob_[i];
        if (e.inst.op == Opcode::Call)
            stack.push_back(e.pc + 1);
        else if (e.inst.op == Opcode::Ret && !stack.empty())
            stack.pop_back();
    }
    if (stack.empty())
        return rob_[ret_index].pc + 1; // fall through on empty stack
    return stack.back();
}

Word
Cpu::evalAlu(const RobEntry &e) const
{
    const Instruction &i = e.inst;
    switch (i.op) {
      case Opcode::MovImm: return static_cast<Word>(i.imm);
      case Opcode::Mov: return e.valA;
      case Opcode::Add: return e.valA + e.valB;
      case Opcode::Sub: return e.valA - e.valB;
      case Opcode::And: return e.valA & e.valB;
      case Opcode::Or: return e.valA | e.valB;
      case Opcode::Xor: return e.valA ^ e.valB;
      case Opcode::Shl: return e.valA << (e.valB & 63);
      case Opcode::Shr: return e.valA >> (e.valB & 63);
      case Opcode::AddImm:
        return e.valA + static_cast<Word>(i.imm);
      case Opcode::AndImm:
        return e.valA & static_cast<Word>(i.imm);
      case Opcode::ShlImm: return e.valA << (i.imm & 63);
      case Opcode::ShrImm: return e.valA >> (i.imm & 63);
      case Opcode::MulImm:
        return e.valA * static_cast<Word>(i.imm);
      case Opcode::RdTsc: return cycle_;
      default: return 0;
    }
}

bool
Cpu::evalCond(Cond cond, Word a, Word b)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (cond) {
      case Cond::Eq: return a == b;
      case Cond::Ne: return a != b;
      case Cond::Lt: return sa < sb;
      case Cond::Ge: return sa >= sb;
      case Cond::Ltu: return a < b;
      case Cond::Geu: return a >= b;
    }
    return false;
}

void
Cpu::captureOperands(RobEntry &e)
{
    // Producers are resolved by their absolute ROB position (see
    // RenameRef): one bounds-checked access replaces the old
    // per-cycle binary search.  A committed producer's position is
    // below robPops_, so the unsigned subtraction lands out of
    // range; a squashed producer implies this consumer was squashed
    // with it, so a stale hit cannot occur.
    const auto producer = [this](std::uint64_t seq,
                                 std::uint64_t abs) -> const RobEntry * {
        const std::size_t index =
            static_cast<std::size_t>(abs - robPops_);
        if (index < rob_.size() && rob_[index].seq == seq)
            return &rob_[index];
        return nullptr;
    };
    if (e.needA && !e.aReady && e.hasProdA) {
        const RobEntry *prod = producer(e.prodA, e.prodAAbs);
        if (!prod) {
            // Producer committed; its value is architectural now.
            e.valA = regs_[e.inst.ra];
            e.aReady = true;
        } else if (prod->forwardable) {
            e.valA = prod->result;
            e.taintAOn = prod->resultTaintOn;
            e.taintA = prod->resultTaint;
            e.aReady = true;
        }
    }
    if (e.needB && !e.bReady && e.hasProdB) {
        const RobEntry *prod = producer(e.prodB, e.prodBAbs);
        if (!prod) {
            e.valB = regs_[e.inst.rb];
            e.bReady = true;
        } else if (prod->forwardable) {
            e.valB = prod->result;
            e.taintBOn = prod->resultTaintOn;
            e.taintB = prod->resultTaint;
            e.bReady = true;
        }
    }
}

void
Cpu::finishExecution(RobEntry &e)
{
    e.result = evalAlu(e);
    e.hasResult = true;
    e.forwardable = true;
    if (e.taintAOn && taintLive(e.taintA)) {
        e.resultTaintOn = true;
        e.resultTaint = e.taintA;
    } else if (e.taintBOn && taintLive(e.taintB)) {
        e.resultTaintOn = true;
        e.resultTaint = e.taintB;
    }
    e.completed = true;
}

void
Cpu::progressLoad(RobEntry &e, std::size_t index)
{
    const HwDefenseConfig &def = config_.defense;
    const VulnConfig &vuln = config_.vuln;

    if (!e.addrDone && e.aReady) {
        e.vaddr = e.valA + static_cast<Word>(e.inst.imm);
        const Translation t = pt_.translate(
            e.vaddr, AccessType::Read, privilege_, enclaveMode_);
        e.paddr = t.paddr;
        e.paddrValid = t.paddrValid;
        e.fault = t.fault;
        e.addrDone = true;
        // Authorization track: the permission/fault check races the
        // data access below (the paper's step 2).
        e.authStarted = true;
        e.authDoneCycle = cycle_ + config_.permCheckLatency;
    }
    if (e.addrDone && !e.authDone && cycle_ >= e.authDoneCycle)
        e.authDone = true;

    if (e.addrDone && !e.dataStarted) {
        const bool under_spec = underOlderSpeculation(index);

        // Strategy 1 (hardware fencing): no access before
        // authorization.
        if (def.fenceSpeculativeLoads && (under_spec || !e.authDone))
            return;
        // Strategy 3 (STT): no transmit whose address is tainted.
        if (def.blockTaintedTransmit && e.taintAOn &&
            taintLive(e.taintA)) {
            return;
        }
        // Store-to-load disambiguation.
        const bool unresolved_store = sb_.hasUnresolvedOlder(e.seq);
        if (unresolved_store &&
            (def.safeStoreBypass || !vuln.storeBypass)) {
            return;
        }
        // Partial-overlap hazard: an older resolved store covers
        // part of this load but cannot forward all of it; wait for
        // the store to drain.
        if (e.paddrValid &&
            sb_.mustStallLoad(e.seq, e.paddr, e.inst.size)) {
            return;
        }
        // Strategy 3 (Conditional Speculation): speculative misses
        // wait.
        if (def.conditionalSpeculation && under_spec) {
            const bool hit =
                e.fault == FaultKind::None && e.paddrValid &&
                (cache_.contains(e.paddr, ctx_) ||
                 sb_.forward(e.seq, e.paddr, e.inst.size).has_value());
            if (!hit)
                return;
        }

        e.dataStarted = true;
        std::uint32_t latency = config_.cache.hitLatency;
        Word value = 0;
        bool transient = false;

        if (e.fault == FaultKind::None && e.paddrValid) {
            if (const auto fwd =
                    sb_.forward(e.seq, e.paddr, e.inst.size)) {
                value = *fwd;
                latency = 1;
                loadPort_.record(value);
            } else {
                bool allocate = true;
                if (def.invisibleSpeculation && under_spec) {
                    allocate = false;
                    e.needCommitInsert = true;
                }
                const CacheAccess ca =
                    cache_.access(e.paddr, ctx_, allocate);
                latency = ca.latency;
                // Spoiler: partially aliased store-buffer entries
                // stall the load; physical 1MB aliases stall more.
                if (sb_.partialAliasOlder(e.seq, e.vaddr))
                    latency += config_.partialAliasPenalty;
                if (sb_.physAliasOlder(e.seq, e.paddr))
                    latency += config_.physAliasPenalty;
                if (!ca.hit && allocate) {
                    e.insertedLine = true;
                    e.insertedLineAddr = e.paddr;
                    if (under_spec)
                        ++stats_.speculativeFills;
                }
                value = mem_.read(e.paddr, e.inst.size);
                if (!ca.hit)
                    lfb_.recordFill(e.paddr, value);
                loadPort_.record(value);
            }
        } else if (e.fault == FaultKind::Privilege && e.paddrValid) {
            // Meltdown path: data access races the privilege check.
            if (vuln.meltdown) {
                const CacheAccess ca =
                    cache_.access(e.paddr, ctx_, true);
                latency = ca.latency;
                if (!ca.hit) {
                    e.insertedLine = true;
                    e.insertedLineAddr = e.paddr;
                    ++stats_.speculativeFills;
                }
                value = mem_.read(e.paddr, e.inst.size);
                if (!ca.hit)
                    lfb_.recordFill(e.paddr, value);
                loadPort_.record(value);
                transient = true;
            } else {
                value = 0; // fixed silicon forwards zeros
            }
        } else if ((e.fault == FaultKind::NotPresent ||
                    e.fault == FaultKind::ReservedBit) &&
                   e.paddrValid) {
            // Foreshadow / L1TF: the terminal fault reads the L1 by
            // the PTE's physical address bits -- only if the line is
            // actually in the cache.  When it is not, a vulnerable
            // machine falls through to buffer residue forwarding,
            // which is the LVI injection path.
            if (vuln.l1tf && cache_.contains(e.paddr, ctx_)) {
                value = mem_.read(e.paddr, e.inst.size);
                transient = true;
            } else if (e.txnMember ? vuln.taa : vuln.mds) {
                value = selectResidue(e.vaddr);
                transient = true;
            } else {
                value = 0;
            }
        } else {
            // No usable physical address (unmapped): the MDS family.
            // Inside a doomed transaction this is the TAA path.
            const bool forward_residue =
                e.txnMember ? vuln.taa : vuln.mds;
            if (forward_residue) {
                value = selectResidue(e.vaddr);
                transient = true;
            } else {
                value = 0;
            }
        }

        if (transient)
            ++stats_.transientForwards;
        e.result = value;
        e.dataDoneCycle = cycle_ + std::max<std::uint32_t>(latency, 1);
    }

    if (e.dataStarted && !e.dataDone && cycle_ >= e.dataDoneCycle) {
        e.dataDone = true;
        e.hasResult = true;
        const bool safe = entrySafe(e, index);
        e.resultTaintOn = !safe;
        e.resultTaint = e.seq;
        // Strategy 2 (NDA): forward only once safe.
        e.forwardable =
            config_.defense.blockSpeculativeForwarding ? safe : true;
    }
    if (e.hasResult && !e.forwardable &&
        config_.defense.blockSpeculativeForwarding &&
        entrySafe(e, index)) {
        e.forwardable = true;
        e.resultTaintOn = false;
    }
    if (e.dataDone && e.authDone)
        e.completed = true;
}

void
Cpu::progressStore(RobEntry &e, std::size_t index)
{
    if (!e.addrDone && e.aReady) {
        e.vaddr = e.valA + static_cast<Word>(e.inst.imm);
        const Translation t = pt_.translate(
            e.vaddr, AccessType::Write, privilege_, enclaveMode_);
        e.paddr = t.paddr;
        e.paddrValid = t.paddrValid;
        e.fault = t.fault;
        e.addrDone = true;
        e.authStarted = true;
        e.authDoneCycle = cycle_ + config_.permCheckLatency;
        if (e.paddrValid) {
            sb_.setAddress(e.seq, e.vaddr, e.paddr);
            checkMemOrderViolation(e);
        }
    }
    if (e.addrDone && !e.authDone && cycle_ >= e.authDoneCycle)
        e.authDone = true;
    if (e.bReady && !e.executed) {
        const Word data = e.inst.size == 1 ? (e.valB & 0xff) : e.valB;
        sb_.setData(e.seq, data);
        e.executed = true;
    }
    if (e.addrDone && e.executed && e.authDone)
        e.completed = true;
    (void)index;
}

void
Cpu::checkMemOrderViolation(const RobEntry &store)
{
    const auto store_index = indexOfSeq(store.seq);
    if (!store_index)
        return;
    for (std::size_t j = *store_index + 1; j < rob_.size(); ++j) {
        const RobEntry &e = rob_[j];
        if (!isLoad(e.inst.op) || !e.dataStarted || !e.paddrValid)
            continue;
        const Addr store_end = store.paddr + store.inst.size;
        const Addr load_end = e.paddr + e.inst.size;
        const bool overlap =
            store.paddr < load_end && e.paddr < store_end;
        if (overlap) {
            // The load speculatively bypassed this store and read
            // stale data: squash and refetch from the load.
            ++stats_.memOrderViolations;
            squashFrom(j, e.pc);
            return;
        }
    }
}

void
Cpu::progress(RobEntry &e, std::size_t index, bool fence_blocked)
{
    captureOperands(e);

    // LFENCE/MFENCE: younger instructions do not execute until the
    // fence retires (the paper's strategy-1 software defense).  The
    // caller hoists the fence position scan out of the per-entry
    // loop (executeStage).
    if (fence_blocked)
        return;

    switch (e.inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Lfence:
      case Opcode::Mfence:
      case Opcode::XEnd:
        e.completed = true;
        break;

      case Opcode::XBegin:
      case Opcode::Jmp:
      case Opcode::Call:
        e.resolved = true;
        e.actualNext = e.predNext;
        e.completed = true;
        break;

      case Opcode::MovImm:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::AddImm:
      case Opcode::AndImm:
      case Opcode::ShlImm:
      case Opcode::ShrImm:
      case Opcode::MulImm:
      case Opcode::RdTsc:
        if ((!e.needA || e.aReady) && (!e.needB || e.bReady)) {
            if (!e.executed) {
                e.executed = true;
                e.doneCycle = cycle_ + 1;
            }
            if (!e.hasResult && cycle_ >= e.doneCycle)
                finishExecution(e);
        }
        break;

      case Opcode::Branch:
        if (e.aReady && e.bReady && !e.resolveScheduled) {
            e.resolveScheduled = true;
            e.resolveCycle = cycle_ + config_.branchResolveLatency;
        }
        if (e.resolveScheduled && !e.resolved &&
            cycle_ >= e.resolveCycle) {
            e.resolved = true;
            e.actualTaken = evalCond(e.inst.cond, e.valA, e.valB);
            e.actualNext = e.actualTaken
                               ? static_cast<Addr>(e.inst.imm)
                               : e.pc + 1;
            e.completed = true;
            if (e.predNext == kNoPred) {
                // Serialized fetch: redirect, no squash needed.
                fetchPc_ = e.actualNext;
                fetchStallSeq_.reset();
            } else if (e.actualNext != e.predNext) {
                e.mispredicted = true;
                ++stats_.branchMispredicts;
                squashFrom(index + 1, e.actualNext);
            }
        }
        break;

      case Opcode::JmpInd:
        if (e.aReady && !e.resolveScheduled) {
            e.resolveScheduled = true;
            e.resolveCycle = cycle_ + config_.branchResolveLatency;
        }
        if (e.resolveScheduled && !e.resolved &&
            cycle_ >= e.resolveCycle) {
            e.resolved = true;
            e.actualNext = e.valA;
            e.completed = true;
            if (e.predNext == kNoPred) {
                fetchPc_ = e.actualNext;
                fetchStallSeq_.reset();
            } else if (e.actualNext != e.predNext) {
                e.mispredicted = true;
                ++stats_.branchMispredicts;
                squashFrom(index + 1, e.actualNext);
            }
        }
        break;

      case Opcode::Ret:
        if (!e.resolveScheduled) {
            e.resolveScheduled = true;
            e.resolveCycle = cycle_ + config_.retResolveLatency +
                             retExtraDelay_;
        }
        if (e.resolveScheduled && !e.resolved &&
            cycle_ >= e.resolveCycle) {
            e.resolved = true;
            e.actualNext = retActualTarget(index);
            e.completed = true;
            if (e.predNext == kNoPred) {
                fetchPc_ = e.actualNext;
                fetchStallSeq_.reset();
            } else if (e.actualNext != e.predNext) {
                e.mispredicted = true;
                ++stats_.branchMispredicts;
                squashFrom(index + 1, e.actualNext);
            }
        }
        break;

      case Opcode::Load:
        progressLoad(e, index);
        break;

      case Opcode::Store:
        progressStore(e, index);
        break;

      case Opcode::Clflush:
        if (e.aReady && !e.addrDone) {
            e.vaddr = e.valA + static_cast<Word>(e.inst.imm);
            const Translation t = pt_.translate(
                e.vaddr, AccessType::Read, privilege_, enclaveMode_);
            e.paddr = t.paddr;
            e.paddrValid = t.paddrValid;
            e.addrDone = true;
            e.completed = true;
        }
        break;

      case Opcode::RdMsr:
        if (!e.authStarted) {
            e.authStarted = true;
            e.authDoneCycle = cycle_ + config_.permCheckLatency;
            if (privilege_ == Privilege::User)
                e.fault = FaultKind::MsrPrivilege;
        }
        if (!e.authDone && cycle_ >= e.authDoneCycle)
            e.authDone = true;
        if (!e.dataStarted) {
            e.dataStarted = true;
            e.dataDoneCycle = cycle_ + 2;
            const std::size_t index_msr =
                static_cast<std::size_t>(e.inst.imm) % kNumMsrs;
            // The register value is available before the privilege
            // check resolves (Spectre v3a race).
            if (e.fault == FaultKind::None || config_.vuln.msr) {
                e.result = msrs_[index_msr];
                if (e.fault != FaultKind::None)
                    ++stats_.transientForwards;
            } else {
                e.result = 0;
            }
        }
        if (e.dataStarted && !e.dataDone && cycle_ >= e.dataDoneCycle) {
            e.dataDone = true;
            e.hasResult = true;
            const bool safe = entrySafe(e, index);
            e.resultTaintOn = !safe;
            e.resultTaint = e.seq;
            e.forwardable =
                config_.defense.blockSpeculativeForwarding ? safe
                                                           : true;
        }
        if (e.hasResult && !e.forwardable &&
            config_.defense.blockSpeculativeForwarding &&
            entrySafe(e, index)) {
            e.forwardable = true;
            e.resultTaintOn = false;
        }
        if (e.dataDone && e.authDone)
            e.completed = true;
        break;

      case Opcode::FpRead:
        if (!e.authStarted) {
            e.authStarted = true;
            e.authDoneCycle = cycle_ + config_.permCheckLatency;
            if (fpu_.owner() != ctx_)
                e.fault = FaultKind::FpuNotOwned;
        }
        if (!e.authDone && cycle_ >= e.authDoneCycle)
            e.authDone = true;
        // The architectural FPU file is written at commit: wait for
        // older in-flight writes of this register to retire.
        for (std::size_t i = 0; i < index; ++i) {
            const RobEntry &older = rob_[i];
            if (older.inst.op == Opcode::FpMov &&
                older.inst.rd == e.inst.ra) {
                return;
            }
        }
        if (!e.dataStarted) {
            e.dataStarted = true;
            e.dataDoneCycle = cycle_ + 2;
            // LazyFP race: the stale register value is forwarded
            // before the ownership check resolves.
            if (e.fault == FaultKind::None || config_.vuln.lazyFp) {
                e.result = fpu_.read(e.inst.ra);
                if (e.fault != FaultKind::None)
                    ++stats_.transientForwards;
            } else {
                e.result = 0;
            }
        }
        if (e.dataStarted && !e.dataDone && cycle_ >= e.dataDoneCycle) {
            e.dataDone = true;
            e.hasResult = true;
            const bool safe = entrySafe(e, index);
            e.resultTaintOn = !safe;
            e.resultTaint = e.seq;
            e.forwardable =
                config_.defense.blockSpeculativeForwarding ? safe
                                                           : true;
        }
        if (e.hasResult && !e.forwardable &&
            config_.defense.blockSpeculativeForwarding &&
            entrySafe(e, index)) {
            e.forwardable = true;
            e.resultTaintOn = false;
        }
        if (e.dataDone && e.authDone)
            e.completed = true;
        break;

      case Opcode::FpMov:
        if (!e.authStarted) {
            e.authStarted = true;
            e.authDoneCycle = cycle_ + config_.permCheckLatency;
            if (fpu_.owner() != ctx_)
                e.fault = FaultKind::FpuNotOwned;
        }
        if (!e.authDone && cycle_ >= e.authDoneCycle)
            e.authDone = true;
        if (e.aReady && e.authDone)
            e.completed = true;
        break;
    }
}

void
Cpu::dispatch(const Instruction &inst, Addr pc)
{
    // Fill the entry directly in its ROB slot: RobEntry is large
    // enough that stack-construct + copy showed up in profiles.
    RobEntry &e = rob_.emplace_back();
    e.inst = inst;
    e.pc = pc;
    e.seq = ++seqCounter_;

    switch (inst.op) {
      case Opcode::Mov:
      case Opcode::AddImm:
      case Opcode::AndImm:
      case Opcode::ShlImm:
      case Opcode::ShrImm:
      case Opcode::MulImm:
      case Opcode::Load:
      case Opcode::JmpInd:
      case Opcode::Clflush:
      case Opcode::FpMov:
        e.needA = true;
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Branch:
        e.needA = true;
        e.needB = true;
        break;
      case Opcode::Store:
        e.needA = true; // address base
        e.needB = true; // data
        break;
      default:
        break;
    }

    if (e.needA) {
        if (rename_[inst.ra]) {
            e.hasProdA = true;
            e.prodA = rename_[inst.ra]->seq;
            e.prodAAbs = rename_[inst.ra]->abs;
        } else {
            e.valA = regs_[inst.ra];
            e.aReady = true;
        }
    }
    if (e.needB) {
        if (rename_[inst.rb]) {
            e.hasProdB = true;
            e.prodB = rename_[inst.rb]->seq;
            e.prodBAbs = rename_[inst.rb]->abs;
        } else {
            e.valB = regs_[inst.rb];
            e.bReady = true;
        }
    }

    // Next-fetch prediction.
    const HwDefenseConfig &def = config_.defense;
    switch (inst.op) {
      case Opcode::Branch:
        if (def.noBranchPrediction) {
            e.predNext = kNoPred;
        } else {
            e.predNext = bp_.predictTaken(pc)
                             ? static_cast<Addr>(inst.imm)
                             : pc + 1;
        }
        break;
      case Opcode::Jmp:
        e.predNext = static_cast<Addr>(inst.imm);
        break;
      case Opcode::JmpInd:
        if (def.noIndirectPrediction)
            e.predNext = kNoPred;
        else
            e.predNext = btb_.predict(pc).value_or(pc + 1);
        break;
      case Opcode::Call:
        e.predNext = static_cast<Addr>(inst.imm);
        rsb_.push(pc + 1);
        break;
      case Opcode::Ret:
        if (def.noIndirectPrediction) {
            e.predNext = kNoPred;
        } else {
            const Rsb::Pop pop = rsb_.pop();
            if (pop.valid) {
                e.predNext = pop.target;
            } else {
                // RSB underflow: fall back to the BTB, the
                // Spectre-RSB entry point.
                e.predNext = btb_.predict(pc).value_or(pc + 1);
            }
        }
        break;
      case Opcode::Halt:
        e.predNext = pc;
        fetchHalted_ = true;
        break;
      default:
        e.predNext = pc + 1;
        break;
    }

    if (writesIntReg(inst))
        rename_[inst.rd] = RenameRef{e.seq, robPops_ + rob_.size() - 1};
    if (isStore(inst.op))
        sb_.allocate(e.seq, inst.size);

    if (inst.op == Opcode::Lfence || inst.op == Opcode::Mfence)
        ++fencesInRob_;

    e.txnMember = txnActive_ || fetchInTxn_;
    if (inst.op == Opcode::XBegin)
        fetchInTxn_ = true;
    else if (inst.op == Opcode::XEnd)
        fetchInTxn_ = false;
}

void
Cpu::fetchStage()
{
    // A serialized-fetch stall is cleared before fetch ever runs
    // again: resolution happens in executeStage (which redirects
    // fetchPc_ and resets the stall for predNext == kNoPred
    // entries), and any squash resets it unconditionally.  So a
    // still-set stall means the entry is live and unresolved — no
    // per-cycle ROB lookup needed.
    if (fetchStallSeq_)
        return;

    for (unsigned w = 0; w < config_.fetchWidth; ++w) {
        if (rob_.size() >= config_.robSize || fetchHalted_)
            return;
        const Instruction inst = fetchPc_ < program_.size()
                                     ? program_.at(fetchPc_)
                                     : halt();
        dispatch(inst, fetchPc_);
        const RobEntry &e = rob_.back();
        if (e.predNext == kNoPred) {
            fetchStallSeq_ = e.seq;
            return;
        }
        fetchPc_ = e.predNext;
        if (inst.op == Opcode::Halt)
            return;
    }
}

void
Cpu::executeStage()
{
    // One scan finds the oldest in-flight fence; every younger
    // entry is fence-blocked.  The position cannot move during the
    // pass: fences leave the ROB only at commit (between cycles)
    // or when a squash drops *younger* entries.
    std::size_t first_fence = rob_.size();
    if (fencesInRob_ > 0) {
        for (std::size_t i = 0; i < rob_.size(); ++i) {
            const Opcode op = rob_[i].inst.op;
            if (op == Opcode::Lfence || op == Opcode::Mfence) {
                first_fence = i;
                break;
            }
        }
    }
    const bool nda = config_.defense.blockSpeculativeForwarding;
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        RobEntry &e = rob_[i];
        // A completed entry's state machine is exhausted: every
        // progress path is guarded (!resolved / hasResult /
        // completed), so re-running it is a no-op — except the NDA
        // late forwardable flip, which still needs polling while a
        // completed-but-unforwardable result waits to become safe.
        if (e.completed && (!nda || e.forwardable))
            continue;
        progress(e, i, i > first_fence);
    }
}

void
Cpu::applyCommit(RobEntry &e)
{
    const Instruction &inst = e.inst;
    if (writesIntReg(inst))
        regs_[inst.rd] = e.result;

    switch (inst.op) {
      case Opcode::Store:
        if (const auto entry = sb_.drainOldest(e.seq)) {
            mem_.write(entry->paddr, entry->data, entry->size);
            cache_.access(entry->paddr, ctx_, true); // write-allocate
        }
        break;
      case Opcode::Clflush:
        if (e.paddrValid)
            cache_.flushLine(e.paddr);
        break;
      case Opcode::Branch:
        bp_.update(e.pc, e.actualTaken);
        break;
      case Opcode::JmpInd:
        btb_.update(e.pc, e.actualNext);
        break;
      case Opcode::Call:
        archCallStack_.push_back(e.pc + 1);
        break;
      case Opcode::Ret:
        if (!archCallStack_.empty())
            archCallStack_.pop_back();
        break;
      case Opcode::XBegin:
        txnActive_ = true;
        txnAbortTarget_ = static_cast<Addr>(inst.imm);
        break;
      case Opcode::XEnd:
        txnActive_ = false;
        break;
      case Opcode::FpMov:
        fpu_.write(inst.rd, e.valA);
        break;
      case Opcode::Load:
        if (e.needCommitInsert && e.paddrValid) {
            // InvisiSpec: install the line only now that the load is
            // architecturally committed.
            cache_.access(e.paddr, ctx_, true);
        }
        break;
      default:
        break;
    }

    if (rename_[inst.rd] && rename_[inst.rd]->seq == e.seq &&
        writesIntReg(inst)) {
        rename_[inst.rd].reset();
    }
}

void
Cpu::deliverException(const RobEntry &head)
{
    PendingException pe;
    pe.fault = head.fault;
    pe.pc = head.pc;
    pe.isTxnAbort = head.txnMember;
    pe.deliverCycle =
        cycle_ + (pe.isTxnAbort ? config_.txnAbortDetectLatency
                                : config_.exceptionDeliveryLatency);
    pendingException_ = pe;
}

void
Cpu::commitStage()
{
    if (pendingException_) {
        if (cycle_ < pendingException_->deliverCycle)
            return;
        const PendingException pe = *pendingException_;
        pendingException_.reset();
        ++stats_.exceptions;
        lastFault_ = pe.fault;
        lastFaultPc_ = pe.pc;
        if (pe.isTxnAbort) {
            // TSX abort: roll back the transaction, continue at the
            // abort handler.  No architectural exception.
            txnActive_ = false;
            squashFrom(0, txnAbortTarget_);
        } else if (faultHandler_) {
            squashFrom(0, *faultHandler_);
        } else {
            squashFrom(0, 0);
            runFaulted_ = true;
        }
        return;
    }

    for (unsigned w = 0; w < config_.commitWidth; ++w) {
        if (rob_.empty())
            return;
        RobEntry &head = rob_.front();
        if (!head.completed)
            return;
        if (head.fault != FaultKind::None) {
            deliverException(head);
            return;
        }
        applyCommit(head);
        ++stats_.committed;
        const bool was_halt = head.inst.op == Opcode::Halt;
        if (head.inst.op == Opcode::Lfence ||
            head.inst.op == Opcode::Mfence) {
            --fencesInRob_;
        }
        rob_.pop_front();
        ++robPops_;
        if (was_halt) {
            runHalted_ = true;
            return;
        }
    }
}

void
Cpu::stepCycle()
{
    ++cycle_;
    ++stats_.cycles;
    commitStage();
    executeStage();
    fetchStage();
}

RunResult
Cpu::run(Addr start_pc, std::uint64_t max_cycles)
{
    rob_.clear();
    robPops_ = 0;
    fencesInRob_ = 0;
    rename_.fill(std::nullopt);
    sb_.squashAfter(0); // drop any stale pending entries
    fetchPc_ = start_pc;
    fetchHalted_ = false;
    fetchStallSeq_.reset();
    pendingException_.reset();
    runHalted_ = false;
    runFaulted_ = false;
    lastFault_ = FaultKind::None;
    lastFaultPc_ = 0;
    txnActive_ = false;
    fetchInTxn_ = false;

    const std::uint64_t start_cycle = cycle_;
    const std::uint64_t start_committed = stats_.committed;
    while (!runHalted_ && !runFaulted_ &&
           cycle_ - start_cycle < max_cycles) {
        stepCycle();
    }

    RunResult r;
    r.halted = runHalted_;
    r.faulted = runFaulted_;
    r.fault = lastFault_;
    r.faultPc = lastFaultPc_;
    r.cycles = cycle_ - start_cycle;
    r.committed = stats_.committed - start_committed;
    return r;
}

} // namespace specsec::uarch
