/**
 * @file
 * Covert-channel receivers (paper Section II-C).
 *
 * Flush+Reload: hit-and-access based -- flush shared lines, let the
 * sender run, reload and time; a fast slot reveals the secret.
 *
 * Prime+Probe: miss-and-access based -- fill cache sets with the
 * receiver's own lines, let the sender run, probe and time; a slow
 * set reveals the secret.
 *
 * Both are implemented at harness level using the CPU's committed
 * access helpers, mirroring what the receiver process would do.
 */

#ifndef SPECSEC_UARCH_COVERT_HH
#define SPECSEC_UARCH_COVERT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu.hh"

namespace specsec::uarch
{

/** Result of reading the channel once. */
struct ChannelRecovery
{
    int value = -1; ///< recovered symbol, -1 when no signal
    std::vector<std::uint32_t> latencies; ///< per-slot timing
};

/**
 * Flush+Reload over a shared probe array of @p slots lines spaced
 * @p stride bytes apart (page stride per the paper, to avoid
 * prefetch effects).
 */
class FlushReloadChannel
{
  public:
    FlushReloadChannel(Cpu &cpu, Addr probe_base,
                       std::size_t slots = 256,
                       Addr stride = kPageSize);

    /** Step 1(a): flush every probe line. */
    void setup();

    /** Step 5: reload every probe line and time it. */
    ChannelRecovery recover();

    Addr probeBase() const { return probeBase_; }
    Addr stride() const { return stride_; }
    std::size_t slots() const { return slots_; }

    /** Latency below this is a hit. */
    std::uint32_t threshold() const;

  private:
    Cpu &cpu_;
    Addr probeBase_;
    std::size_t slots_;
    Addr stride_;
};

/**
 * Prime+Probe over the L1: the receiver owns an eviction array
 * covering every set; the sender's single line fill evicts one of
 * the receiver's lines.
 *
 * The sender must touch `probe_base + value * lineSize` where
 * probe_base is set-aligned, so that the victim's value selects a
 * cache set.
 */
class PrimeProbeChannel
{
  public:
    PrimeProbeChannel(Cpu &cpu, Addr evict_base,
                      std::size_t slots = 256);

    /** Step 1(a): prime every monitored set with receiver lines. */
    void prime();

    /** Step 5: probe every set; the slow one carries the value. */
    ChannelRecovery recover();

    std::size_t slots() const { return slots_; }

  private:
    Cpu &cpu_;
    Addr evictBase_;
    std::size_t slots_;
};

/**
 * Evict+Time (miss-and-operation based, paper Section II-C): the
 * receiver evicts one candidate cache set, times the victim's whole
 * operation, and infers which set the victim uses from the slowdown.
 */
class EvictTimeChannel
{
  public:
    EvictTimeChannel(Cpu &cpu, Addr evict_base,
                     std::size_t slots = 256);

    /** Fill every way of @p set with receiver lines. */
    void evictSet(std::size_t set);

    /**
     * Sweep all candidate sets.
     *
     * @param prepare   re-establishes the victim's warm state
     *                  before each trial.
     * @param victim_op runs the victim operation, returning its
     *                  duration in cycles.
     * @return the victim's set (slowest trial), or -1 if no trial
     *         stood out.
     */
    ChannelRecovery recover(const std::function<void()> &prepare,
                            const std::function<std::uint64_t()>
                                &victim_op);

  private:
    Cpu &cpu_;
    Addr evictBase_;
    std::size_t slots_;
};

/**
 * Cache-collision timing (hit-and-operation based): the victim's
 * operation is faster when two of its internal accesses collide on
 * a line; the receiver sweeps a guess input and takes the fastest.
 *
 * @param slots     number of guesses.
 * @param prepare   resets cache state before each trial.
 * @param victim_op runs the victim with the guess, returning its
 *                  duration in cycles.
 */
ChannelRecovery
recoverByCollision(std::size_t slots,
                   const std::function<void()> &prepare,
                   const std::function<std::uint64_t(int)> &victim_op);

} // namespace specsec::uarch

#endif // SPECSEC_UARCH_COVERT_HH
