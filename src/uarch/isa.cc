#include "isa.hh"

#include <sstream>
#include <stdexcept>

namespace specsec::uarch
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::MovImm: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::AddImm: return "addi";
      case Opcode::AndImm: return "andi";
      case Opcode::ShlImm: return "shli";
      case Opcode::ShrImm: return "shri";
      case Opcode::MulImm: return "muli";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Branch: return "br";
      case Opcode::Jmp: return "jmp";
      case Opcode::JmpInd: return "jmpi";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Clflush: return "clflush";
      case Opcode::Lfence: return "lfence";
      case Opcode::Mfence: return "mfence";
      case Opcode::RdMsr: return "rdmsr";
      case Opcode::FpMov: return "fpmov";
      case Opcode::FpRead: return "fpread";
      case Opcode::RdTsc: return "rdtsc";
      case Opcode::XBegin: return "xbegin";
      case Opcode::XEnd: return "xend";
    }
    return "???";
}

namespace
{

const char *
condName(Cond cond)
{
    switch (cond) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "lt";
      case Cond::Ge: return "ge";
      case Cond::Ltu: return "ltu";
      case Cond::Geu: return "geu";
    }
    return "??";
}

} // anonymous namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Lfence:
      case Opcode::Mfence:
      case Opcode::XEnd:
      case Opcode::Ret:
        break;
      case Opcode::MovImm:
        os << " r" << int(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Mov:
        os << " r" << int(inst.rd) << ", r" << int(inst.ra);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
        os << " r" << int(inst.rd) << ", r" << int(inst.ra) << ", r"
           << int(inst.rb);
        break;
      case Opcode::AddImm:
      case Opcode::AndImm:
      case Opcode::ShlImm:
      case Opcode::ShrImm:
      case Opcode::MulImm:
        os << " r" << int(inst.rd) << ", r" << int(inst.ra) << ", "
           << inst.imm;
        break;
      case Opcode::Load:
        os << (inst.size == 1 ? "8" : "64") << " r" << int(inst.rd)
           << ", [r" << int(inst.ra) << " + " << inst.imm << "]";
        break;
      case Opcode::Store:
        os << (inst.size == 1 ? "8" : "64") << " [r" << int(inst.ra)
           << " + " << inst.imm << "], r" << int(inst.rb);
        break;
      case Opcode::Branch:
        os << "." << condName(inst.cond) << " r" << int(inst.ra)
           << ", r" << int(inst.rb) << ", @" << inst.imm;
        break;
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::XBegin:
        os << " @" << inst.imm;
        break;
      case Opcode::JmpInd:
        os << " r" << int(inst.ra);
        break;
      case Opcode::Clflush:
        os << " [r" << int(inst.ra) << " + " << inst.imm << "]";
        break;
      case Opcode::RdMsr:
        os << " r" << int(inst.rd) << ", msr" << inst.imm;
        break;
      case Opcode::FpMov:
        os << " f" << int(inst.rd) << ", r" << int(inst.ra);
        break;
      case Opcode::FpRead:
        os << " r" << int(inst.rd) << ", f" << int(inst.ra);
        break;
      case Opcode::RdTsc:
        os << " r" << int(inst.rd);
        break;
    }
    return os.str();
}

namespace
{

Instruction
make(Opcode op, RegId rd = 0, RegId ra = 0, RegId rb = 0,
     std::int64_t imm = 0, Cond cond = Cond::Eq, std::uint8_t size = 8)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.ra = ra;
    i.rb = rb;
    i.imm = imm;
    i.cond = cond;
    i.size = size;
    return i;
}

} // anonymous namespace

Instruction nop() { return make(Opcode::Nop); }
Instruction halt() { return make(Opcode::Halt); }

Instruction
movImm(RegId rd, std::int64_t imm)
{
    return make(Opcode::MovImm, rd, 0, 0, imm);
}

Instruction mov(RegId rd, RegId ra) { return make(Opcode::Mov, rd, ra); }

Instruction
add(RegId rd, RegId ra, RegId rb)
{
    return make(Opcode::Add, rd, ra, rb);
}

Instruction
sub(RegId rd, RegId ra, RegId rb)
{
    return make(Opcode::Sub, rd, ra, rb);
}

Instruction
andr(RegId rd, RegId ra, RegId rb)
{
    return make(Opcode::And, rd, ra, rb);
}

Instruction
orr(RegId rd, RegId ra, RegId rb)
{
    return make(Opcode::Or, rd, ra, rb);
}

Instruction
xorr(RegId rd, RegId ra, RegId rb)
{
    return make(Opcode::Xor, rd, ra, rb);
}

Instruction
shl(RegId rd, RegId ra, RegId rb)
{
    return make(Opcode::Shl, rd, ra, rb);
}

Instruction
shr(RegId rd, RegId ra, RegId rb)
{
    return make(Opcode::Shr, rd, ra, rb);
}

Instruction
addImm(RegId rd, RegId ra, std::int64_t imm)
{
    return make(Opcode::AddImm, rd, ra, 0, imm);
}

Instruction
andImm(RegId rd, RegId ra, std::int64_t imm)
{
    return make(Opcode::AndImm, rd, ra, 0, imm);
}

Instruction
shlImm(RegId rd, RegId ra, std::int64_t imm)
{
    return make(Opcode::ShlImm, rd, ra, 0, imm);
}

Instruction
shrImm(RegId rd, RegId ra, std::int64_t imm)
{
    return make(Opcode::ShrImm, rd, ra, 0, imm);
}

Instruction
mulImm(RegId rd, RegId ra, std::int64_t imm)
{
    return make(Opcode::MulImm, rd, ra, 0, imm);
}

Instruction
load8(RegId rd, RegId ra, std::int64_t offset)
{
    return make(Opcode::Load, rd, ra, 0, offset, Cond::Eq, 1);
}

Instruction
load64(RegId rd, RegId ra, std::int64_t offset)
{
    return make(Opcode::Load, rd, ra, 0, offset, Cond::Eq, 8);
}

Instruction
store8(RegId ra, std::int64_t offset, RegId rb)
{
    return make(Opcode::Store, 0, ra, rb, offset, Cond::Eq, 1);
}

Instruction
store64(RegId ra, std::int64_t offset, RegId rb)
{
    return make(Opcode::Store, 0, ra, rb, offset, Cond::Eq, 8);
}

Instruction
branch(Cond cond, RegId ra, RegId rb, std::int64_t target)
{
    return make(Opcode::Branch, 0, ra, rb, target, cond);
}

Instruction jmp(std::int64_t target)
{
    return make(Opcode::Jmp, 0, 0, 0, target);
}

Instruction jmpInd(RegId ra) { return make(Opcode::JmpInd, 0, ra); }

Instruction
call(std::int64_t target)
{
    return make(Opcode::Call, 0, 0, 0, target);
}

Instruction ret() { return make(Opcode::Ret); }

Instruction
clflush(RegId ra, std::int64_t offset)
{
    return make(Opcode::Clflush, 0, ra, 0, offset);
}

Instruction lfence() { return make(Opcode::Lfence); }
Instruction mfence() { return make(Opcode::Mfence); }

Instruction
rdmsr(RegId rd, std::int64_t msr)
{
    return make(Opcode::RdMsr, rd, 0, 0, msr);
}

Instruction
fpMov(RegId fd, RegId ra)
{
    return make(Opcode::FpMov, fd, ra);
}

Instruction
fpRead(RegId rd, RegId fa)
{
    return make(Opcode::FpRead, rd, fa);
}

Instruction rdtsc(RegId rd) { return make(Opcode::RdTsc, rd); }

Instruction
xbegin(std::int64_t abort_target)
{
    return make(Opcode::XBegin, 0, 0, 0, abort_target);
}

Instruction xend() { return make(Opcode::XEnd); }

bool
isLoad(Opcode op)
{
    return op == Opcode::Load;
}

bool
isStore(Opcode op)
{
    return op == Opcode::Store;
}

bool
isControl(Opcode op)
{
    return op == Opcode::Branch || op == Opcode::Jmp ||
           op == Opcode::JmpInd || op == Opcode::Call ||
           op == Opcode::Ret || op == Opcode::XBegin;
}

bool
writesIntReg(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::MovImm:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::AddImm:
      case Opcode::AndImm:
      case Opcode::ShlImm:
      case Opcode::ShrImm:
      case Opcode::MulImm:
      case Opcode::Load:
      case Opcode::RdMsr:
      case Opcode::FpRead:
      case Opcode::RdTsc:
        return true;
      default:
        return false;
    }
}

std::size_t
Program::emit(const Instruction &inst)
{
    code_.push_back(inst);
    return code_.size() - 1;
}

Program::Label
Program::newLabel()
{
    labelTargets_.push_back(-1);
    return Label{labelTargets_.size() - 1};
}

void
Program::bind(Label label)
{
    labelTargets_.at(label.id) =
        static_cast<std::int64_t>(code_.size());
    // Patch pending fixups for this label.
    for (const Fixup &f : fixups_) {
        if (f.labelId == label.id)
            code_[f.pc].imm = labelTargets_[label.id];
    }
}

std::size_t
Program::emitBranch(Cond cond, RegId ra, RegId rb, Label target)
{
    const std::size_t pc = emit(branch(cond, ra, rb, 0));
    if (labelTargets_.at(target.id) >= 0)
        code_[pc].imm = labelTargets_[target.id];
    else
        fixups_.push_back({pc, target.id});
    return pc;
}

std::size_t
Program::emitJmp(Label target)
{
    const std::size_t pc = emit(jmp(0));
    if (labelTargets_.at(target.id) >= 0)
        code_[pc].imm = labelTargets_[target.id];
    else
        fixups_.push_back({pc, target.id});
    return pc;
}

std::size_t
Program::emitCall(Label target)
{
    const std::size_t pc = emit(call(0));
    if (labelTargets_.at(target.id) >= 0)
        code_[pc].imm = labelTargets_[target.id];
    else
        fixups_.push_back({pc, target.id});
    return pc;
}

std::size_t
Program::emitXBegin(Label abort_target)
{
    const std::size_t pc = emit(xbegin(0));
    if (labelTargets_.at(abort_target.id) >= 0)
        code_[pc].imm = labelTargets_[abort_target.id];
    else
        fixups_.push_back({pc, abort_target.id});
    return pc;
}

void
Program::insertAt(std::size_t pc, const Instruction &inst)
{
    if (pc > code_.size())
        throw std::out_of_range("Program::insertAt: pc out of range");
    code_.insert(code_.begin() + static_cast<std::ptrdiff_t>(pc),
                 inst);
    // Every absolute target at or beyond the insertion point shifts.
    for (std::size_t i = 0; i < code_.size(); ++i) {
        Instruction &ins = code_[i];
        const bool has_target =
            ins.op == Opcode::Branch || ins.op == Opcode::Jmp ||
            ins.op == Opcode::Call || ins.op == Opcode::XBegin;
        if (has_target && ins.imm >= static_cast<std::int64_t>(pc) &&
            i != pc) {
            ins.imm += 1;
        }
    }
}

void
Program::finalize() const
{
    for (std::size_t i = 0; i < labelTargets_.size(); ++i) {
        if (labelTargets_[i] < 0)
            throw std::logic_error("Program: unbound label");
    }
}

std::string
Program::disassembleAll() const
{
    std::ostringstream os;
    for (std::size_t pc = 0; pc < code_.size(); ++pc)
        os << pc << ": " << disassemble(code_[pc]) << "\n";
    return os.str();
}

} // namespace specsec::uarch
