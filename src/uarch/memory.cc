#include "memory.hh"

#include <algorithm>
#include <stdexcept>

namespace specsec::uarch
{

const char *
faultKindName(FaultKind fault)
{
    switch (fault) {
      case FaultKind::None: return "none";
      case FaultKind::NotMapped: return "not-mapped";
      case FaultKind::NotPresent: return "not-present";
      case FaultKind::ReservedBit: return "reserved-bit";
      case FaultKind::Privilege: return "privilege";
      case FaultKind::WriteProtect: return "write-protect";
      case FaultKind::MsrPrivilege: return "msr-privilege";
      case FaultKind::FpuNotOwned: return "fpu-not-owned";
      case FaultKind::TsxAbort: return "tsx-abort";
    }
    return "unknown";
}

void
PageTable::map(Addr vaddr, Pte pte)
{
    pages_[vaddr / kPageSize] = pte;
}

void
PageTable::mapRange(Addr base, Addr length, PageOwner owner,
                    bool user_accessible, bool writable)
{
    const Addr first = base / kPageSize;
    const Addr last = (base + length + kPageSize - 1) / kPageSize;
    for (Addr vpn = first; vpn < last; ++vpn) {
        Pte pte;
        pte.physPage = vpn; // identity mapping
        pte.owner = owner;
        pte.userAccessible = user_accessible;
        pte.writable = writable;
        pages_[vpn] = pte;
    }
}

void
PageTable::unmap(Addr vaddr)
{
    pages_.erase(vaddr / kPageSize);
}

const Pte *
PageTable::lookup(Addr vaddr) const
{
    const auto it = pages_.find(vaddr / kPageSize);
    return it == pages_.end() ? nullptr : &it->second;
}

Pte *
PageTable::lookup(Addr vaddr)
{
    const auto it = pages_.find(vaddr / kPageSize);
    return it == pages_.end() ? nullptr : &it->second;
}

void
PageTable::setPresent(Addr vaddr, bool present)
{
    Pte *pte = lookup(vaddr);
    if (!pte)
        throw std::invalid_argument("setPresent: page not mapped");
    pte->present = present;
}

void
PageTable::setReservedBit(Addr vaddr, bool reserved)
{
    Pte *pte = lookup(vaddr);
    if (!pte)
        throw std::invalid_argument("setReservedBit: page not mapped");
    pte->reservedBit = reserved;
}

Translation
PageTable::translate(Addr vaddr, AccessType type, Privilege privilege,
                     bool enclave_mode) const
{
    Translation t;
    const Pte *pte = lookup(vaddr);
    if (!pte) {
        t.fault = FaultKind::NotMapped;
        return t;
    }
    t.paddr = pte->physPage * kPageSize + (vaddr % kPageSize);
    t.paddrValid = true;

    // Terminal conditions first: the page walk aborts before the
    // privilege checks, which is the L1TF trigger.
    if (!pte->present) {
        t.fault = FaultKind::NotPresent;
        return t;
    }
    if (pte->reservedBit) {
        t.fault = FaultKind::ReservedBit;
        return t;
    }

    // Domain / privilege checks.
    switch (pte->owner) {
      case PageOwner::User:
        break;
      case PageOwner::Kernel:
        if (privilege == Privilege::User) {
            t.fault = FaultKind::Privilege;
            return t;
        }
        break;
      case PageOwner::Enclave:
        if (!enclave_mode) {
            t.fault = FaultKind::Privilege;
            return t;
        }
        break;
      case PageOwner::Vmm:
        if (privilege != Privilege::Vmm) {
            t.fault = FaultKind::Privilege;
            return t;
        }
        break;
    }
    // Enclaves execute at user privilege; the owner check above
    // already admitted this access, so the user-accessible bit does
    // not apply to enclave pages in enclave mode.
    const bool enclave_access =
        pte->owner == PageOwner::Enclave && enclave_mode;
    if (!pte->userAccessible && privilege == Privilege::User &&
        !enclave_access) {
        t.fault = FaultKind::Privilege;
        return t;
    }
    if (type == AccessType::Write && !pte->writable) {
        t.fault = FaultKind::WriteProtect;
        return t;
    }
    return t;
}

Memory::Memory(std::size_t size)
    : bytes_(size, 0),
      dirty_((size / kPageSize + 64) / 64, 0)
{
}

void
Memory::rezeroDirtyPages()
{
    for (std::size_t w = 0; w < dirty_.size(); ++w) {
        std::uint64_t bits = dirty_[w];
        if (!bits)
            continue;
        dirty_[w] = 0;
        while (bits) {
            const int bit = __builtin_ctzll(bits);
            bits &= bits - 1;
            const std::size_t page = w * 64 +
                                     static_cast<std::size_t>(bit);
            const std::size_t start = page * kPageSize;
            const std::size_t len =
                std::min<std::size_t>(kPageSize,
                                      bytes_.size() - start);
            std::fill_n(bytes_.begin() +
                            static_cast<std::ptrdiff_t>(start),
                        len, 0);
        }
    }
}

std::size_t
Memory::dirtyPageCount() const
{
    std::size_t count = 0;
    for (const std::uint64_t bits : dirty_)
        count += static_cast<std::size_t>(
            __builtin_popcountll(bits));
    return count;
}

void
Memory::check(Addr paddr, std::size_t len) const
{
    if (paddr + len > bytes_.size())
        throw std::out_of_range("Memory: physical address out of range");
}

std::uint8_t
Memory::read8(Addr paddr) const
{
    check(paddr, 1);
    return bytes_[paddr];
}

void
Memory::write8(Addr paddr, std::uint8_t value)
{
    check(paddr, 1);
    markDirty(paddr, 1);
    bytes_[paddr] = value;
}

Word
Memory::read64(Addr paddr) const
{
    check(paddr, 8);
    Word value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | bytes_[paddr + static_cast<Addr>(i)];
    return value;
}

void
Memory::write64(Addr paddr, Word value)
{
    check(paddr, 8);
    markDirty(paddr, 8);
    for (int i = 0; i < 8; ++i) {
        bytes_[paddr + static_cast<Addr>(i)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

Word
Memory::read(Addr paddr, std::uint8_t size) const
{
    return size == 1 ? read8(paddr) : read64(paddr);
}

void
Memory::write(Addr paddr, Word value, std::uint8_t size)
{
    if (size == 1)
        write8(paddr, static_cast<std::uint8_t>(value));
    else
        write64(paddr, value);
}

} // namespace specsec::uarch
