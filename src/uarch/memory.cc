#include "memory.hh"

#include <algorithm>
#include <stdexcept>

namespace specsec::uarch
{

const char *
faultKindName(FaultKind fault)
{
    switch (fault) {
      case FaultKind::None: return "none";
      case FaultKind::NotMapped: return "not-mapped";
      case FaultKind::NotPresent: return "not-present";
      case FaultKind::ReservedBit: return "reserved-bit";
      case FaultKind::Privilege: return "privilege";
      case FaultKind::WriteProtect: return "write-protect";
      case FaultKind::MsrPrivilege: return "msr-privilege";
      case FaultKind::FpuNotOwned: return "fpu-not-owned";
      case FaultKind::TsxAbort: return "tsx-abort";
    }
    return "unknown";
}

void
PageTable::ensureDense(Addr vpn)
{
    if (vpn >= slots_.size())
        slots_.resize(static_cast<std::size_t>(vpn) + 1);
}

void
PageTable::map(Addr vaddr, Pte pte)
{
    const Addr vpn = vaddr / kPageSize;
    if (vpn < kDenseVpns) {
        ensureDense(vpn);
        slots_[vpn].pte = pte;
        slots_[vpn].mapped = true;
    } else {
        overflow_[vpn] = pte;
    }
}

void
PageTable::mapRange(Addr base, Addr length, PageOwner owner,
                    bool user_accessible, bool writable)
{
    const Addr first = base / kPageSize;
    const Addr last = (base + length + kPageSize - 1) / kPageSize;
    for (Addr vpn = first; vpn < last; ++vpn) {
        Pte pte;
        pte.physPage = vpn; // identity mapping
        pte.owner = owner;
        pte.userAccessible = user_accessible;
        pte.writable = writable;
        if (vpn < kDenseVpns) {
            ensureDense(vpn);
            slots_[vpn].pte = pte;
            slots_[vpn].mapped = true;
        } else {
            overflow_[vpn] = pte;
        }
    }
}

void
PageTable::unmap(Addr vaddr)
{
    const Addr vpn = vaddr / kPageSize;
    if (vpn < slots_.size())
        slots_[vpn].mapped = false;
    else if (vpn >= kDenseVpns)
        overflow_.erase(vpn);
}

const Pte *
PageTable::lookup(Addr vaddr) const
{
    const Addr vpn = vaddr / kPageSize;
    if (vpn < slots_.size())
        return slots_[vpn].mapped ? &slots_[vpn].pte : nullptr;
    if (vpn < kDenseVpns || overflow_.empty())
        return nullptr;
    const auto it = overflow_.find(vpn);
    return it == overflow_.end() ? nullptr : &it->second;
}

Pte *
PageTable::lookup(Addr vaddr)
{
    return const_cast<Pte *>(
        static_cast<const PageTable *>(this)->lookup(vaddr));
}

void
PageTable::setPresent(Addr vaddr, bool present)
{
    Pte *pte = lookup(vaddr);
    if (!pte)
        throw std::invalid_argument("setPresent: page not mapped");
    pte->present = present;
}

void
PageTable::setReservedBit(Addr vaddr, bool reserved)
{
    Pte *pte = lookup(vaddr);
    if (!pte)
        throw std::invalid_argument("setReservedBit: page not mapped");
    pte->reservedBit = reserved;
}

Translation
PageTable::translate(Addr vaddr, AccessType type, Privilege privilege,
                     bool enclave_mode) const
{
    Translation t;
    const Pte *pte = lookup(vaddr);
    if (!pte) {
        t.fault = FaultKind::NotMapped;
        return t;
    }
    t.paddr = pte->physPage * kPageSize + (vaddr % kPageSize);
    t.paddrValid = true;

    // Terminal conditions first: the page walk aborts before the
    // privilege checks, which is the L1TF trigger.
    if (!pte->present) {
        t.fault = FaultKind::NotPresent;
        return t;
    }
    if (pte->reservedBit) {
        t.fault = FaultKind::ReservedBit;
        return t;
    }

    // Domain / privilege checks.
    switch (pte->owner) {
      case PageOwner::User:
        break;
      case PageOwner::Kernel:
        if (privilege == Privilege::User) {
            t.fault = FaultKind::Privilege;
            return t;
        }
        break;
      case PageOwner::Enclave:
        if (!enclave_mode) {
            t.fault = FaultKind::Privilege;
            return t;
        }
        break;
      case PageOwner::Vmm:
        if (privilege != Privilege::Vmm) {
            t.fault = FaultKind::Privilege;
            return t;
        }
        break;
    }
    // Enclaves execute at user privilege; the owner check above
    // already admitted this access, so the user-accessible bit does
    // not apply to enclave pages in enclave mode.
    const bool enclave_access =
        pte->owner == PageOwner::Enclave && enclave_mode;
    if (!pte->userAccessible && privilege == Privilege::User &&
        !enclave_access) {
        t.fault = FaultKind::Privilege;
        return t;
    }
    if (type == AccessType::Write && !pte->writable) {
        t.fault = FaultKind::WriteProtect;
        return t;
    }
    return t;
}

Memory::Memory(std::size_t size)
    : bytes_(size, 0),
      dirty_((size / kPageSize + 64) / 64, 0)
{
}

void
Memory::rezeroDirtyPages()
{
    for (std::size_t w = 0; w < dirty_.size(); ++w) {
        std::uint64_t bits = dirty_[w];
        if (!bits)
            continue;
        dirty_[w] = 0;
        while (bits) {
            const int bit = __builtin_ctzll(bits);
            bits &= bits - 1;
            const std::size_t page = w * 64 +
                                     static_cast<std::size_t>(bit);
            const std::size_t start = page * kPageSize;
            const std::size_t len =
                std::min<std::size_t>(kPageSize,
                                      bytes_.size() - start);
            std::fill_n(bytes_.begin() +
                            static_cast<std::ptrdiff_t>(start),
                        len, 0);
        }
    }
}

std::size_t
Memory::dirtyPageCount() const
{
    std::size_t count = 0;
    for (const std::uint64_t bits : dirty_)
        count += static_cast<std::size_t>(
            __builtin_popcountll(bits));
    return count;
}

std::vector<PageImage>
Memory::captureDirtyPages() const
{
    std::vector<PageImage> pages;
    pages.reserve(dirtyPageCount());
    for (std::size_t w = 0; w < dirty_.size(); ++w) {
        std::uint64_t bits = dirty_[w];
        while (bits) {
            const int bit = __builtin_ctzll(bits);
            bits &= bits - 1;
            const std::size_t page = w * 64 +
                                     static_cast<std::size_t>(bit);
            const std::size_t start = page * kPageSize;
            const std::size_t len =
                std::min<std::size_t>(kPageSize,
                                      bytes_.size() - start);
            PageImage image;
            image.page = static_cast<Addr>(page);
            std::copy_n(bytes_.begin() +
                            static_cast<std::ptrdiff_t>(start),
                        len, image.bytes.begin());
            pages.push_back(image);
        }
    }
    return pages;
}

void
Memory::restoreDirtyPages(const std::vector<PageImage> &pages)
{
    rezeroDirtyPages();
    for (const PageImage &image : pages) {
        const std::size_t start =
            static_cast<std::size_t>(image.page) * kPageSize;
        if (start >= bytes_.size())
            throw std::out_of_range(
                "restoreDirtyPages: page out of range");
        const std::size_t len =
            std::min<std::size_t>(kPageSize, bytes_.size() - start);
        std::copy_n(image.bytes.begin(), len,
                    bytes_.begin() +
                        static_cast<std::ptrdiff_t>(start));
        dirty_[image.page >> 6] |= std::uint64_t{1}
                                   << (image.page & 63);
    }
}

void
Memory::check(Addr paddr, std::size_t len) const
{
    if (paddr + len > bytes_.size())
        throw std::out_of_range("Memory: physical address out of range");
}

std::uint8_t
Memory::read8(Addr paddr) const
{
    check(paddr, 1);
    return bytes_[paddr];
}

void
Memory::write8(Addr paddr, std::uint8_t value)
{
    check(paddr, 1);
    markDirty(paddr, 1);
    bytes_[paddr] = value;
}

Word
Memory::read64(Addr paddr) const
{
    check(paddr, 8);
    Word value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | bytes_[paddr + static_cast<Addr>(i)];
    return value;
}

void
Memory::write64(Addr paddr, Word value)
{
    check(paddr, 8);
    markDirty(paddr, 8);
    for (int i = 0; i < 8; ++i) {
        bytes_[paddr + static_cast<Addr>(i)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

Word
Memory::read(Addr paddr, std::uint8_t size) const
{
    return size == 1 ? read8(paddr) : read64(paddr);
}

void
Memory::write(Addr paddr, Word value, std::uint8_t size)
{
    if (size == 1)
        write8(paddr, static_cast<std::uint8_t>(value));
    else
        write64(paddr, value);
}

} // namespace specsec::uarch
