#include "reference.hh"

namespace specsec::uarch
{

ReferenceCpu::ReferenceCpu(Memory &memory, PageTable &pt)
    : mem_(memory), pt_(pt)
{
}

void
ReferenceCpu::loadProgram(const Program &program)
{
    program.finalize();
    program_ = program;
}

ReferenceResult
ReferenceCpu::run(Addr start_pc, std::uint64_t max_steps)
{
    ReferenceResult result;
    Addr pc = start_pc;
    callStack_.clear();

    const auto fault = [&](FaultKind kind, Addr at) -> bool {
        result.fault = kind;
        result.faultPc = at;
        if (faultHandler_) {
            pc = *faultHandler_;
            return true; // continue at the handler
        }
        result.faulted = true;
        return false;
    };

    while (result.executed < max_steps) {
        if (pc >= program_.size()) {
            result.halted = true;
            return result;
        }
        const Instruction &i = program_.at(pc);
        ++result.executed;
        Addr next = pc + 1;

        const auto signedv = [](Word w) {
            return static_cast<std::int64_t>(w);
        };

        switch (i.op) {
          case Opcode::Nop:
            break;
          case Opcode::Halt:
            result.halted = true;
            return result;
          case Opcode::MovImm:
            regs_[i.rd] = static_cast<Word>(i.imm);
            break;
          case Opcode::Mov:
            regs_[i.rd] = regs_[i.ra];
            break;
          case Opcode::Add:
            regs_[i.rd] = regs_[i.ra] + regs_[i.rb];
            break;
          case Opcode::Sub:
            regs_[i.rd] = regs_[i.ra] - regs_[i.rb];
            break;
          case Opcode::And:
            regs_[i.rd] = regs_[i.ra] & regs_[i.rb];
            break;
          case Opcode::Or:
            regs_[i.rd] = regs_[i.ra] | regs_[i.rb];
            break;
          case Opcode::Xor:
            regs_[i.rd] = regs_[i.ra] ^ regs_[i.rb];
            break;
          case Opcode::Shl:
            regs_[i.rd] = regs_[i.ra] << (regs_[i.rb] & 63);
            break;
          case Opcode::Shr:
            regs_[i.rd] = regs_[i.ra] >> (regs_[i.rb] & 63);
            break;
          case Opcode::AddImm:
            regs_[i.rd] = regs_[i.ra] + static_cast<Word>(i.imm);
            break;
          case Opcode::AndImm:
            regs_[i.rd] = regs_[i.ra] & static_cast<Word>(i.imm);
            break;
          case Opcode::ShlImm:
            regs_[i.rd] = regs_[i.ra] << (i.imm & 63);
            break;
          case Opcode::ShrImm:
            regs_[i.rd] = regs_[i.ra] >> (i.imm & 63);
            break;
          case Opcode::MulImm:
            regs_[i.rd] = regs_[i.ra] * static_cast<Word>(i.imm);
            break;
          case Opcode::Load: {
            const Addr vaddr =
                regs_[i.ra] + static_cast<Word>(i.imm);
            const Translation t = pt_.translate(
                vaddr, AccessType::Read, privilege_, enclaveMode_);
            if (t.fault != FaultKind::None) {
                if (fault(t.fault, pc))
                    continue;
                return result;
            }
            regs_[i.rd] = mem_.read(t.paddr, i.size);
            break;
          }
          case Opcode::Store: {
            const Addr vaddr =
                regs_[i.ra] + static_cast<Word>(i.imm);
            const Translation t = pt_.translate(
                vaddr, AccessType::Write, privilege_, enclaveMode_);
            if (t.fault != FaultKind::None) {
                if (fault(t.fault, pc))
                    continue;
                return result;
            }
            const Word data =
                i.size == 1 ? (regs_[i.rb] & 0xff) : regs_[i.rb];
            mem_.write(t.paddr, data, i.size);
            break;
          }
          case Opcode::Branch: {
            const Word a = regs_[i.ra];
            const Word b = regs_[i.rb];
            bool taken = false;
            switch (i.cond) {
              case Cond::Eq: taken = a == b; break;
              case Cond::Ne: taken = a != b; break;
              case Cond::Lt: taken = signedv(a) < signedv(b); break;
              case Cond::Ge: taken = signedv(a) >= signedv(b); break;
              case Cond::Ltu: taken = a < b; break;
              case Cond::Geu: taken = a >= b; break;
            }
            if (taken)
                next = static_cast<Addr>(i.imm);
            break;
          }
          case Opcode::Jmp:
            next = static_cast<Addr>(i.imm);
            break;
          case Opcode::JmpInd:
            next = regs_[i.ra];
            break;
          case Opcode::Call:
            callStack_.push_back(pc + 1);
            next = static_cast<Addr>(i.imm);
            break;
          case Opcode::Ret:
            if (callStack_.empty()) {
                next = pc + 1;
            } else {
                next = callStack_.back();
                callStack_.pop_back();
            }
            break;
          case Opcode::Clflush:
          case Opcode::Lfence:
          case Opcode::Mfence:
            break; // no architectural effect
          case Opcode::RdMsr:
            if (privilege_ == Privilege::User) {
                if (fault(FaultKind::MsrPrivilege, pc))
                    continue;
                return result;
            }
            regs_[i.rd] =
                msrs_[static_cast<std::size_t>(i.imm) % kNumMsrs];
            break;
          case Opcode::FpMov:
            if (fpu_.owner() != 0) {
                if (fault(FaultKind::FpuNotOwned, pc))
                    continue;
                return result;
            }
            fpu_.write(i.rd, regs_[i.ra]);
            break;
          case Opcode::FpRead:
            if (fpu_.owner() != 0) {
                if (fault(FaultKind::FpuNotOwned, pc))
                    continue;
                return result;
            }
            regs_[i.rd] = fpu_.read(i.ra);
            break;
          case Opcode::RdTsc:
            regs_[i.rd] = result.executed; // deterministic counter
            break;
          case Opcode::XBegin:
          case Opcode::XEnd:
            break; // transactions commit when nothing faults
        }
        pc = next;
    }
    return result;
}

} // namespace specsec::uarch
