/**
 * @file
 * Physical memory, page table and permission model.
 *
 * The page table supports the permission bits every modeled attack
 * depends on: present (Foreshadow terminal fault), user-accessible
 * (Meltdown), writable (Spectre v1.2), reserved bits
 * (Foreshadow-NG), and a page-owner domain tag (User / Kernel /
 * Enclave / Vmm) that reproduces the three isolation domains the
 * Foreshadow variants breach.
 *
 * Crucially for the Meltdown/Foreshadow model, a translation that
 * *faults* still reports the physical address when the PTE exists:
 * the address bits are architecturally available to the pipeline
 * before the permission check completes, which is exactly the race
 * the paper describes.
 */

#ifndef SPECSEC_UARCH_MEMORY_HH
#define SPECSEC_UARCH_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa.hh"

namespace specsec::uarch
{

/** Page size in bytes. */
constexpr Addr kPageSize = 4096;

/** CPU privilege levels. */
enum class Privilege : std::uint8_t
{
    User,
    Kernel,
    Vmm,
};

/** Protection domain owning a page. */
enum class PageOwner : std::uint8_t
{
    User,
    Kernel,
    Enclave,
    Vmm,
};

/** Faults an access can raise. */
enum class FaultKind : std::uint8_t
{
    None,
    NotMapped,    ///< no PTE at all (KPTI-unmapped, wild pointer)
    NotPresent,   ///< PTE exists, present bit clear (L1TF trigger)
    ReservedBit,  ///< PTE reserved bit set (Foreshadow-NG trigger)
    Privilege,    ///< user access to kernel/enclave/VMM page
    WriteProtect, ///< store to a read-only page
    MsrPrivilege, ///< user RDMSR
    FpuNotOwned,  ///< lazy-FPU ownership fault
    TsxAbort,     ///< transaction asynchronous abort
};

/** @return stable human-readable fault name. */
const char *faultKindName(FaultKind fault);

/** A page table entry. */
struct Pte
{
    Addr physPage = 0;  ///< physical page number
    bool present = true;
    bool writable = true;
    bool userAccessible = true;
    bool reservedBit = false;
    PageOwner owner = PageOwner::User;
};

/** Memory access type for permission checking. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
    Execute,
};

/** Result of a translation: physical address plus any fault. */
struct Translation
{
    Addr paddr = 0;
    bool paddrValid = false; ///< PTE existed, address bits known
    FaultKind fault = FaultKind::None;
};

/**
 * A single-level page table mapping virtual page numbers to PTEs.
 *
 * Storage is a flat dense array indexed by virtual page number:
 * translate() — the hottest call in the whole simulator (every
 * load/store address generation plus the thousands of committed
 * channel probes a covert-channel harness issues per cell) — is one
 * bounds check and one indexed read, with no hashing.  The modeled
 * address spaces are small and contiguous (the scenario layout tops
 * out below 8MB), so the dense array stays a few dozen KB; the rare
 * mapping above kDenseVpns (a wild high vaddr) falls back to a side
 * map so the semantics stay exactly those of the old hash-map table.
 */
class PageTable
{
  public:
    /** VPNs below this live in the dense array (256MB of vaddr). */
    static constexpr Addr kDenseVpns = 1u << 16;

    /** Map the page containing @p vaddr with the given PTE. */
    void map(Addr vaddr, Pte pte);

    /** Identity-map [base, base+length) with the given attributes. */
    void mapRange(Addr base, Addr length, PageOwner owner,
                  bool user_accessible, bool writable);

    /** Remove the mapping for the page containing @p vaddr (KPTI). */
    void unmap(Addr vaddr);

    /** @return the PTE for the page of @p vaddr, or nullptr. */
    const Pte *lookup(Addr vaddr) const;
    Pte *lookup(Addr vaddr);

    /** Clear / set the present bit (Foreshadow setup). */
    void setPresent(Addr vaddr, bool present);

    /** Set the reserved bit (Foreshadow-NG setup). */
    void setReservedBit(Addr vaddr, bool reserved);

    /**
     * Translate a virtual address.
     *
     * The permission check order mirrors hardware: page walk (not
     * mapped?), present/reserved bits (terminal fault), then
     * privilege and write permission.
     *
     * @param enclave_mode true when executing inside the enclave
     *        (may access PageOwner::Enclave pages).
     */
    Translation translate(Addr vaddr, AccessType type,
                          Privilege privilege,
                          bool enclave_mode = false) const;

  private:
    struct Slot
    {
        Pte pte;
        bool mapped = false;
    };

    /** Grow the dense array to cover @p vpn (assumes it fits). */
    void ensureDense(Addr vpn);

    std::vector<Slot> slots_;           ///< dense, indexed by VPN
    std::unordered_map<Addr, Pte> overflow_; ///< VPN >= kDenseVpns
};

/**
 * One dirty page's contents: the unit of a warm-attack memory image
 * (attacks/snapshot.hh).  captureDirtyPages()/restoreDirtyPages()
 * move exactly the pages that diverged from the all-zero baseline,
 * so a snapshot of a trained attack costs a handful of pages, not
 * the whole 8MB address space.
 */
struct PageImage
{
    Addr page = 0; ///< page number (paddr / kPageSize)
    std::array<std::uint8_t, kPageSize> bytes{};
};

/**
 * Flat physical memory, little-endian.
 *
 * Every mutation goes through write8/write64/write, so the image
 * can track which 4KB pages have diverged from the all-zero
 * post-construction state in a small bitmap.  rezeroDirtyPages()
 * restores the construction-time image by re-zeroing only the
 * touched pages — the arena-reset primitive behind the scenario
 * fork path (attacks/snapshot.hh), which turns the per-grid-cell
 * 8MB zero-fill into a handful of page clears.
 */
class Memory
{
  public:
    explicit Memory(std::size_t size);

    std::size_t size() const { return bytes_.size(); }

    std::uint8_t read8(Addr paddr) const;
    void write8(Addr paddr, std::uint8_t value);

    Word read64(Addr paddr) const;
    void write64(Addr paddr, Word value);

    /** Sized read: 1 or 8 bytes, zero-extended. */
    Word read(Addr paddr, std::uint8_t size) const;

    /** Sized write: 1 or 8 bytes. */
    void write(Addr paddr, Word value, std::uint8_t size);

    /**
     * Restore the all-zero construction-time image: re-zero every
     * page written since construction (or the last call) and clear
     * the dirty set.  Afterwards the memory is byte-identical to a
     * freshly constructed Memory of the same size.
     */
    void rezeroDirtyPages();

    /** Pages currently marked dirty (bench/test introspection). */
    std::size_t dirtyPageCount() const;

    /** Copy out every dirty page (warm-attack snapshot capture). */
    std::vector<PageImage> captureDirtyPages() const;

    /**
     * Replace the image with baseline + @p pages: re-zero the
     * current dirty pages, then write @p pages in and mark exactly
     * them dirty.  Afterwards the memory (including its dirty
     * bitmap) is byte-identical to the Memory the pages were
     * captured from.
     */
    void restoreDirtyPages(const std::vector<PageImage> &pages);

  private:
    void check(Addr paddr, std::size_t len) const;

    void
    markDirty(Addr paddr, std::size_t len)
    {
        const Addr first = paddr / kPageSize;
        const Addr last = (paddr + len - 1) / kPageSize;
        dirty_[first >> 6] |= std::uint64_t{1} << (first & 63);
        if (last != first)
            dirty_[last >> 6] |= std::uint64_t{1} << (last & 63);
    }

    std::vector<std::uint8_t> bytes_;
    std::vector<std::uint64_t> dirty_; ///< one bit per page
};

} // namespace specsec::uarch

#endif // SPECSEC_UARCH_MEMORY_HH
