/**
 * @file
 * Hardware predictors: a bimodal conditional branch predictor, a
 * branch target buffer (BTB) and a return stack buffer (RSB).
 *
 * These are the mistrainable structures of Spectre v1/v2/RSB.  All
 * state persists across context switches unless explicitly flushed
 * (the IBPB / predictor-invalidate defenses, strategy 4).
 *
 * Storage is a flat direct-indexed table with a per-entry
 * generation number: predict/update are one indexed read with no
 * hashing (the pipeline consults the predictor at every dispatch
 * and trains it at every branch commit), and flush() — which the
 * flush-on-context-switch defense triggers on every contextSwitch —
 * is a single generation bump instead of a per-entry clear.  An
 * entry whose generation is stale reads as untrained, exactly as a
 * missing hash-map entry used to.  Program PCs are tiny instruction
 * indices (the modeled programs are tens of instructions), so the
 * direct index never collides; a PC beyond the table falls back to
 * a side map to keep the semantics identical for any input.
 */

#ifndef SPECSEC_UARCH_PREDICTOR_HH
#define SPECSEC_UARCH_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "isa.hh"

namespace specsec::uarch
{

/** Direct-index table size shared by the flat predictors. */
constexpr std::size_t kPredictorTableSize = 256;

/**
 * Bimodal predictor: one 2-bit saturating counter per branch PC.
 * Counters start weakly not-taken.
 */
class BranchPredictor
{
  public:
    BranchPredictor() : table_(kPredictorTableSize) {}

    /** @return predicted taken? */
    bool predictTaken(Addr pc) const;

    /** Train with the actual outcome (commit time). */
    void update(Addr pc, bool taken);

    /** IBPB-style flush: O(1) generation bump. */
    void flush();

    std::size_t trainedEntries() const { return trained_; }

  private:
    struct Cell
    {
        std::uint32_t gen = 0; ///< live iff == gen_
        std::uint8_t counter = 0;
    };

    std::vector<Cell> table_;
    std::unordered_map<Addr, std::uint8_t> overflow_;
    std::uint32_t gen_ = 1; ///< cells start one generation stale
    std::size_t trained_ = 0;
};

/**
 * Branch target buffer for indirect branches; also the fallback
 * predictor for RSB underflow (the Spectre-RSB path).
 */
class Btb
{
  public:
    Btb() : table_(kPredictorTableSize) {}

    /** @return predicted target for the indirect branch at @p pc. */
    std::optional<Addr> predict(Addr pc) const;

    /** Train with the actual target (commit time). */
    void update(Addr pc, Addr target);

    /** IBPB-style flush: O(1) generation bump. */
    void flush();

    std::size_t entries() const { return entries_; }

  private:
    struct Cell
    {
        std::uint32_t gen = 0; ///< live iff == gen_
        Addr target = 0;
    };

    std::vector<Cell> table_;
    std::unordered_map<Addr, Addr> overflow_;
    std::uint32_t gen_ = 1;
    std::size_t entries_ = 0;
};

/**
 * Return stack buffer: a fixed-depth prediction stack pushed/popped
 * at fetch time.  Popping an empty RSB reports underflow; the CPU
 * then falls back to the BTB (exploitable by Spectre-RSB) unless the
 * RSB was stuffed with a benign target.
 */
class Rsb
{
  public:
    explicit Rsb(std::size_t depth) : depth_(depth) {}

    /** Push a return address (on call fetch). */
    void push(Addr return_addr);

    /** Result of a pop. */
    struct Pop
    {
        bool valid = false;    ///< a real or stuffed entry was present
        bool stuffed = false;  ///< entry came from RSB stuffing
        Addr target = 0;
    };

    /** Pop a prediction (on return fetch). */
    Pop pop();

    /**
     * Intel-style RSB stuffing: fill all remaining slots with a
     * benign target so underflow never reaches the BTB.
     */
    void stuff(Addr benign_target);

    /** Flush all entries (context-switch defense). */
    void flush();

    std::size_t size() const { return stack_.size(); }
    std::size_t depth() const { return depth_; }

  private:
    struct Entry
    {
        Addr target;
        bool stuffed;
    };
    std::size_t depth_;
    std::vector<Entry> stack_;
};

} // namespace specsec::uarch

#endif // SPECSEC_UARCH_PREDICTOR_HH
