/**
 * @file
 * A set-associative, metadata-only L1 data cache with LRU
 * replacement, explicit flush, timing, per-line domain tags (for
 * DAWG-style partitioning) and undo support (for CleanupSpec).
 *
 * The cache tracks *presence and timing*, not data: data always
 * comes from physical memory or the store buffer.  This is
 * sufficient for covert-channel modeling because the channel signal
 * is the hit/miss latency difference, and it keeps squashed
 * speculative state trivially consistent (the paper's point: caches
 * are micro-architectural state that is *not* rolled back).
 */

#ifndef SPECSEC_UARCH_CACHE_HH
#define SPECSEC_UARCH_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa.hh"

namespace specsec::uarch
{

/** Cache geometry and timing. */
struct CacheConfig
{
    std::size_t sets = 256;
    std::size_t ways = 4;
    std::size_t lineSize = 64;
    std::uint32_t hitLatency = 4;
    std::uint32_t missLatency = 200;
};

/** Result of a cache access. */
struct CacheAccess
{
    bool hit = false;
    std::uint32_t latency = 0;
    bool evicted = false; ///< an existing line was displaced
    Addr evictedLineAddr = 0;
};

/** Hit/miss statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t flushes = 0;
};

/**
 * The L1 data cache.
 *
 * Domain tags: when partitioned mode is on (DAWG model), a lookup
 * from domain D only hits lines installed by domain D, reproducing
 * the "sender's state change is invisible across domains" defense.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }

    /** Enable DAWG-style domain partitioning. */
    void setPartitioned(bool partitioned) { partitioned_ = partitioned; }
    bool partitioned() const { return partitioned_; }

    /**
     * Access the line containing @p paddr from @p domain.
     *
     * @param allocate Insert the line on a miss (a normal fill).
     *        Pass false for InvisiSpec-style invisible speculative
     *        loads: the latency is real but no state changes.
     */
    CacheAccess access(Addr paddr, int domain = 0,
                       bool allocate = true);

    /** @return true if the line is present (no LRU/state change). */
    bool contains(Addr paddr, int domain = 0) const;

    /** Insert without timing (commit-time fill for InvisiSpec). */
    void insert(Addr paddr, int domain = 0);

    /** Remove the line if present (clflush, CleanupSpec undo). */
    bool flushLine(Addr paddr);

    /** Remove every line. */
    void flushAll();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    /** @return set index for an address (for Prime+Probe harness). */
    std::size_t setIndex(Addr paddr) const;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        int domain = 0;
        std::uint64_t lastUse = 0;
    };

    Line *find(Addr paddr, int domain);
    const Line *find(Addr paddr, int domain) const;

    CacheConfig config_;
    bool partitioned_ = false;
    std::vector<Line> lines_; ///< sets * ways, row-major by set
    std::uint64_t useCounter_ = 0;
    CacheStats stats_;
};

} // namespace specsec::uarch

#endif // SPECSEC_UARCH_CACHE_HH
