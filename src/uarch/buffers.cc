#include "buffers.hh"

#include <algorithm>

namespace specsec::uarch
{

StoreBufferEntry *
StoreBuffer::findBySeq(std::uint64_t seq)
{
    for (StoreBufferEntry &e : entries_) {
        if (e.seq == seq)
            return &e;
    }
    return nullptr;
}

void
StoreBuffer::allocate(std::uint64_t seq, std::uint8_t size)
{
    StoreBufferEntry entry;
    entry.seq = seq;
    entry.size = size;
    entries_.push_back(entry);
}

void
StoreBuffer::setAddress(std::uint64_t seq, Addr vaddr, Addr paddr)
{
    if (StoreBufferEntry *e = findBySeq(seq)) {
        e->vaddr = vaddr;
        e->paddr = paddr;
        e->addrReady = true;
        if (e->dataReady)
            residue_ = Residue{e->vaddr, e->data};
    }
}

void
StoreBuffer::setData(std::uint64_t seq, Word data)
{
    if (StoreBufferEntry *e = findBySeq(seq)) {
        e->data = data;
        e->dataReady = true;
        // The buffer retains the bits even after squash or drain,
        // which is what Fallout samples.
        residue_ = Residue{e->vaddr, data};
    }
}

void
StoreBuffer::squashAfter(std::uint64_t last_kept)
{
    // Residue intentionally survives: squashed store data lingers in
    // the buffer, which is what Fallout samples.
    std::erase_if(entries_, [last_kept](const StoreBufferEntry &e) {
        return e.seq > last_kept;
    });
}

std::optional<StoreBufferEntry>
StoreBuffer::drainOldest(std::uint64_t seq)
{
    if (entries_.empty() || entries_.front().seq != seq)
        return std::nullopt;
    StoreBufferEntry entry = entries_.front();
    entries_.pop_front();
    return entry;
}

std::optional<Word>
StoreBuffer::forward(std::uint64_t load_seq, Addr paddr,
                     std::uint8_t size) const
{
    // Scan youngest-first among entries older than the load.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (it->seq >= load_seq || !it->addrReady || !it->dataReady)
            continue;
        if (it->paddr == paddr && it->size >= size) {
            const Word data = it->data;
            if (size == 1)
                return data & 0xff;
            return data;
        }
    }
    return std::nullopt;
}

bool
StoreBuffer::hasUnresolvedOlder(std::uint64_t load_seq) const
{
    return std::any_of(
        entries_.begin(), entries_.end(),
        [load_seq](const StoreBufferEntry &e) {
            return e.seq < load_seq && !e.addrReady;
        });
}

bool
StoreBuffer::mustStallLoad(std::uint64_t load_seq, Addr paddr,
                           std::uint8_t size) const
{
    for (const StoreBufferEntry &e : entries_) {
        if (e.seq >= load_seq || !e.addrReady)
            continue;
        const bool overlap = e.paddr < paddr + size &&
                             paddr < e.paddr + e.size;
        if (!overlap)
            continue;
        const bool can_forward =
            e.paddr == paddr && e.size >= size && e.dataReady;
        if (!can_forward)
            return true;
    }
    return false;
}

bool
StoreBuffer::partialAliasOlder(std::uint64_t load_seq, Addr vaddr) const
{
    return std::any_of(
        entries_.begin(), entries_.end(),
        [load_seq, vaddr](const StoreBufferEntry &e) {
            return e.seq < load_seq && e.addrReady &&
                   (e.vaddr & 0xfff) == (vaddr & 0xfff) &&
                   e.vaddr != vaddr;
        });
}

bool
StoreBuffer::physAliasOlder(std::uint64_t load_seq, Addr paddr) const
{
    return std::any_of(
        entries_.begin(), entries_.end(),
        [load_seq, paddr](const StoreBufferEntry &e) {
            return e.seq < load_seq && e.addrReady &&
                   (e.paddr & 0xfffff) == (paddr & 0xfffff) &&
                   e.paddr != paddr;
        });
}

void
LineFillBuffer::recordFill(Addr paddr, Word data)
{
    if (fills_.size() == capacity_)
        fills_.pop_front();
    fills_.push_back({paddr, data});
}

std::optional<Word>
LineFillBuffer::residue() const
{
    if (fills_.empty())
        return std::nullopt;
    return fills_.back().data;
}

void
LineFillBuffer::clear()
{
    fills_.clear();
}

FpuState::FpuState()
{
    regs_.fill(0);
}

Word
FpuState::read(std::size_t reg) const
{
    return regs_.at(reg % kNumFpRegs);
}

void
FpuState::write(std::size_t reg, Word value)
{
    regs_.at(reg % kNumFpRegs) = value;
}

std::array<Word, kNumFpRegs> *
FpuState::findSaved(int ctx)
{
    for (auto &entry : saved_) {
        if (entry.first == ctx)
            return &entry.second;
    }
    return nullptr;
}

void
FpuState::contextSwitch(int new_ctx, bool eager)
{
    if (!eager) {
        // Lazy: leave the registers; the new context does not own
        // them until its first FP instruction faults.
        return;
    }
    takeOwnership(new_ctx);
}

void
FpuState::takeOwnership(int ctx)
{
    if (owner_ == ctx)
        return;
    if (auto *slot = findSaved(owner_))
        *slot = regs_;
    else
        saved_.emplace_back(owner_, regs_);
    if (const auto *slot = findSaved(ctx))
        regs_ = *slot;
    else
        regs_.fill(0);
    owner_ = ctx;
}

} // namespace specsec::uarch
