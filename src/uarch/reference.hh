/**
 * @file
 * Sequential reference model: an in-order ISA interpreter with the
 * same architectural semantics as the out-of-order core but no
 * speculation, no caches and no timing.
 *
 * Used as the correctness oracle for differential testing: whatever
 * races, squashes and transient forwards happen inside the OoO
 * pipeline — with or without defenses — the *committed* state must
 * equal this model's output.
 */

#ifndef SPECSEC_UARCH_REFERENCE_HH
#define SPECSEC_UARCH_REFERENCE_HH

#include <array>
#include <optional>
#include <vector>

#include "buffers.hh"
#include "isa.hh"
#include "memory.hh"

namespace specsec::uarch
{

/** Outcome of a reference run. */
struct ReferenceResult
{
    bool halted = false;
    bool faulted = false; ///< unhandled fault ended the run
    FaultKind fault = FaultKind::None;
    Addr faultPc = 0;
    std::uint64_t executed = 0;
};

/**
 * The sequential interpreter.
 */
class ReferenceCpu
{
  public:
    ReferenceCpu(Memory &memory, PageTable &pt);

    void loadProgram(const Program &program);

    Word reg(RegId r) const { return regs_.at(r); }
    void setReg(RegId r, Word value) { regs_.at(r) = value; }
    void setPrivilege(Privilege p) { privilege_ = p; }
    void setEnclaveMode(bool on) { enclaveMode_ = on; }
    void setMsr(std::size_t index, Word value)
    {
        msrs_.at(index) = value;
    }
    void setFaultHandler(std::optional<Addr> handler)
    {
        faultHandler_ = handler;
    }
    FpuState &fpu() { return fpu_; }

    /** Execute sequentially until halt, fault or step budget. */
    ReferenceResult run(Addr start_pc,
                        std::uint64_t max_steps = 1000000);

  private:
    Memory &mem_;
    PageTable &pt_;
    Program program_;
    std::array<Word, kNumIntRegs> regs_{};
    std::array<Word, kNumMsrs> msrs_{};
    FpuState fpu_;
    Privilege privilege_ = Privilege::User;
    bool enclaveMode_ = false;
    std::optional<Addr> faultHandler_;
    std::vector<Addr> callStack_;
};

} // namespace specsec::uarch

#endif // SPECSEC_UARCH_REFERENCE_HH
