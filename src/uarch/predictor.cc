#include "predictor.hh"

namespace specsec::uarch
{

bool
BranchPredictor::predictTaken(Addr pc) const
{
    // Untrained branches default to weakly taken: an attacker must
    // actively mistrain a bounds-check branch toward not-taken, and
    // flushing the predictor (strategy 4) restores the safe default.
    const auto it = counters_.find(pc);
    const std::uint8_t counter = it == counters_.end() ? 2 : it->second;
    return counter >= 2;
}

void
BranchPredictor::update(Addr pc, bool taken)
{
    auto [it, inserted] = counters_.try_emplace(pc, 2);
    std::uint8_t &counter = it->second;
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

void
BranchPredictor::flush()
{
    counters_.clear();
}

std::optional<Addr>
Btb::predict(Addr pc) const
{
    const auto it = targets_.find(pc);
    if (it == targets_.end())
        return std::nullopt;
    return it->second;
}

void
Btb::update(Addr pc, Addr target)
{
    targets_[pc] = target;
}

void
Btb::flush()
{
    targets_.clear();
}

void
Rsb::push(Addr return_addr)
{
    if (stack_.size() == depth_)
        stack_.erase(stack_.begin()); // overflow drops the oldest
    stack_.push_back({return_addr, false});
}

Rsb::Pop
Rsb::pop()
{
    Pop result;
    if (stack_.empty())
        return result; // underflow
    result.valid = true;
    result.stuffed = stack_.back().stuffed;
    result.target = stack_.back().target;
    stack_.pop_back();
    return result;
}

void
Rsb::stuff(Addr benign_target)
{
    while (stack_.size() < depth_)
        stack_.insert(stack_.begin(), {benign_target, true});
}

void
Rsb::flush()
{
    stack_.clear();
}

} // namespace specsec::uarch
