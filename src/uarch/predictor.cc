#include "predictor.hh"

#include <algorithm>

namespace specsec::uarch
{

bool
BranchPredictor::predictTaken(Addr pc) const
{
    // Untrained branches default to weakly taken: an attacker must
    // actively mistrain a bounds-check branch toward not-taken, and
    // flushing the predictor (strategy 4) restores the safe default.
    std::uint8_t counter = 2;
    if (pc < table_.size()) {
        const Cell &cell = table_[pc];
        if (cell.gen == gen_)
            counter = cell.counter;
    } else if (!overflow_.empty()) {
        const auto it = overflow_.find(pc);
        if (it != overflow_.end())
            counter = it->second;
    }
    return counter >= 2;
}

void
BranchPredictor::update(Addr pc, bool taken)
{
    std::uint8_t *counter;
    if (pc < table_.size()) {
        Cell &cell = table_[pc];
        if (cell.gen != gen_) {
            cell.gen = gen_;
            cell.counter = 2;
            ++trained_;
        }
        counter = &cell.counter;
    } else {
        auto [it, inserted] = overflow_.try_emplace(pc, 2);
        if (inserted)
            ++trained_;
        counter = &it->second;
    }
    if (taken) {
        if (*counter < 3)
            ++*counter;
    } else {
        if (*counter > 0)
            --*counter;
    }
}

void
BranchPredictor::flush()
{
    if (++gen_ == 0) {
        // Generation wrapped: only now do the entries need a real
        // clear (once per 2^32 flushes).
        std::fill(table_.begin(), table_.end(), Cell{});
        gen_ = 1;
    }
    overflow_.clear();
    trained_ = 0;
}

std::optional<Addr>
Btb::predict(Addr pc) const
{
    if (pc < table_.size()) {
        const Cell &cell = table_[pc];
        if (cell.gen == gen_)
            return cell.target;
        return std::nullopt;
    }
    if (!overflow_.empty()) {
        const auto it = overflow_.find(pc);
        if (it != overflow_.end())
            return it->second;
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    if (pc < table_.size()) {
        Cell &cell = table_[pc];
        if (cell.gen != gen_) {
            cell.gen = gen_;
            ++entries_;
        }
        cell.target = target;
    } else {
        if (overflow_.insert_or_assign(pc, target).second)
            ++entries_;
    }
}

void
Btb::flush()
{
    if (++gen_ == 0) {
        std::fill(table_.begin(), table_.end(), Cell{});
        gen_ = 1;
    }
    overflow_.clear();
    entries_ = 0;
}

void
Rsb::push(Addr return_addr)
{
    if (stack_.size() == depth_)
        stack_.erase(stack_.begin()); // overflow drops the oldest
    stack_.push_back({return_addr, false});
}

Rsb::Pop
Rsb::pop()
{
    Pop result;
    if (stack_.empty())
        return result; // underflow
    result.valid = true;
    result.stuffed = stack_.back().stuffed;
    result.target = stack_.back().target;
    stack_.pop_back();
    return result;
}

void
Rsb::stuff(Addr benign_target)
{
    while (stack_.size() < depth_)
        stack_.insert(stack_.begin(), {benign_target, true});
}

void
Rsb::flush()
{
    stack_.clear();
}

} // namespace specsec::uarch
