#include "covert.hh"

#include <algorithm>

namespace specsec::uarch
{

FlushReloadChannel::FlushReloadChannel(Cpu &cpu, Addr probe_base,
                                       std::size_t slots, Addr stride)
    : cpu_(cpu), probeBase_(probe_base), slots_(slots), stride_(stride)
{
}

std::uint32_t
FlushReloadChannel::threshold() const
{
    const CacheConfig &c = cpu_.config().cache;
    return (c.hitLatency + c.missLatency) / 2;
}

void
FlushReloadChannel::setup()
{
    for (std::size_t i = 0; i < slots_; ++i)
        cpu_.flushLineVirt(probeBase_ + i * stride_);
}

ChannelRecovery
FlushReloadChannel::recover()
{
    ChannelRecovery r;
    r.latencies.resize(slots_);
    std::uint32_t best = UINT32_MAX;
    for (std::size_t i = 0; i < slots_; ++i) {
        const std::uint32_t lat =
            cpu_.timedProbe(probeBase_ + i * stride_);
        r.latencies[i] = lat;
        if (lat < best) {
            best = lat;
            r.value = static_cast<int>(i);
        }
    }
    if (best > threshold())
        r.value = -1; // every slot missed: no signal
    return r;
}

PrimeProbeChannel::PrimeProbeChannel(Cpu &cpu, Addr evict_base,
                                     std::size_t slots)
    : cpu_(cpu), evictBase_(evict_base), slots_(slots)
{
}

void
PrimeProbeChannel::prime()
{
    const CacheConfig &c = cpu_.config().cache;
    const Addr way_stride = c.sets * c.lineSize;
    for (std::size_t s = 0; s < slots_; ++s) {
        for (std::size_t w = 0; w < c.ways; ++w) {
            cpu_.timedAccess(evictBase_ + s * c.lineSize +
                             w * way_stride);
        }
    }
}

ChannelRecovery
PrimeProbeChannel::recover()
{
    const CacheConfig &c = cpu_.config().cache;
    const Addr way_stride = c.sets * c.lineSize;
    ChannelRecovery r;
    r.latencies.resize(slots_);
    std::uint32_t best = 0;
    for (std::size_t s = 0; s < slots_; ++s) {
        std::uint32_t total = 0;
        for (std::size_t w = 0; w < c.ways; ++w) {
            total += cpu_.timedAccess(evictBase_ + s * c.lineSize +
                                      w * way_stride);
        }
        r.latencies[s] = total;
        if (total > best) {
            best = total;
            r.value = static_cast<int>(s);
        }
    }
    // A set the sender evicted shows at least one miss.
    if (best < c.ways * c.hitLatency + c.missLatency - c.hitLatency)
        r.value = -1;
    return r;
}

EvictTimeChannel::EvictTimeChannel(Cpu &cpu, Addr evict_base,
                                   std::size_t slots)
    : cpu_(cpu), evictBase_(evict_base), slots_(slots)
{
}

void
EvictTimeChannel::evictSet(std::size_t set)
{
    const CacheConfig &c = cpu_.config().cache;
    const Addr way_stride = c.sets * c.lineSize;
    for (std::size_t w = 0; w < c.ways; ++w)
        cpu_.timedAccess(evictBase_ + set * c.lineSize +
                         w * way_stride);
}

ChannelRecovery
EvictTimeChannel::recover(const std::function<void()> &prepare,
                          const std::function<std::uint64_t()>
                              &victim_op)
{
    ChannelRecovery r;
    r.latencies.resize(slots_);
    std::uint64_t best = 0;
    std::uint64_t floor = UINT64_MAX;
    for (std::size_t s = 0; s < slots_; ++s) {
        prepare();
        evictSet(s);
        const std::uint64_t t = victim_op();
        r.latencies[s] = static_cast<std::uint32_t>(t);
        floor = std::min(floor, t);
        if (t > best) {
            best = t;
            r.value = static_cast<int>(s);
        }
    }
    // No slowdown above the common-case floor: no signal.
    if (best < floor + cpu_.config().cache.missLatency / 2)
        r.value = -1;
    return r;
}

ChannelRecovery
recoverByCollision(std::size_t slots,
                   const std::function<void()> &prepare,
                   const std::function<std::uint64_t(int)> &victim_op)
{
    ChannelRecovery r;
    r.latencies.resize(slots);
    std::uint64_t best = UINT64_MAX;
    std::uint64_t ceiling = 0;
    for (std::size_t g = 0; g < slots; ++g) {
        prepare();
        const std::uint64_t t = victim_op(static_cast<int>(g));
        r.latencies[g] = static_cast<std::uint32_t>(t);
        ceiling = std::max(ceiling, t);
        if (t < best) {
            best = t;
            r.value = static_cast<int>(g);
        }
    }
    if (ceiling == best)
        r.value = -1; // no collision speedup observed
    return r;
}

} // namespace specsec::uarch
