#include "cache.hh"

namespace specsec::uarch
{

Cache::Cache(const CacheConfig &config)
    : config_(config), lines_(config.sets * config.ways)
{
}

std::size_t
Cache::setIndex(Addr paddr) const
{
    return (paddr / config_.lineSize) % config_.sets;
}

Cache::Line *
Cache::find(Addr paddr, int domain)
{
    const Addr tag = paddr / config_.lineSize;
    const std::size_t base = setIndex(paddr) * config_.ways;
    for (std::size_t w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag &&
            (!partitioned_ || line.domain == domain)) {
            return &line;
        }
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr paddr, int domain) const
{
    return const_cast<Cache *>(this)->find(paddr, domain);
}

CacheAccess
Cache::access(Addr paddr, int domain, bool allocate)
{
    CacheAccess result;
    ++useCounter_;
    if (Line *line = find(paddr, domain)) {
        line->lastUse = useCounter_;
        result.hit = true;
        result.latency = config_.hitLatency;
        ++stats_.hits;
        return result;
    }
    result.hit = false;
    result.latency = config_.missLatency;
    ++stats_.misses;
    if (!allocate)
        return result;

    // Fill: pick an invalid way, else evict LRU.
    const std::size_t base = setIndex(paddr) * config_.ways;
    Line *victim = nullptr;
    for (std::size_t w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (victim->valid) {
        result.evicted = true;
        result.evictedLineAddr = victim->tag * config_.lineSize;
        ++stats_.evictions;
    }
    victim->valid = true;
    victim->tag = paddr / config_.lineSize;
    victim->domain = domain;
    victim->lastUse = useCounter_;
    return result;
}

bool
Cache::contains(Addr paddr, int domain) const
{
    return find(paddr, domain) != nullptr;
}

void
Cache::insert(Addr paddr, int domain)
{
    access(paddr, domain, true);
}

bool
Cache::flushLine(Addr paddr)
{
    const Addr tag = paddr / config_.lineSize;
    const std::size_t base = setIndex(paddr) * config_.ways;
    bool flushed = false;
    for (std::size_t w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            flushed = true;
            ++stats_.flushes;
        }
    }
    return flushed;
}

void
Cache::flushAll()
{
    for (Line &line : lines_)
        line.valid = false;
    // With every line invalid the old lastUse values can never be
    // compared again, so the use counter restarts: a fully flushed
    // cache is indistinguishable from a fresh one, which is what
    // lets pooled/warm-restored state share LRU decisions with a
    // rebuilt run (attacks/snapshot.hh).
    useCounter_ = 0;
    ++stats_.flushes;
}

} // namespace specsec::uarch
