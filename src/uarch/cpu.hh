/**
 * @file
 * The speculative out-of-order core.
 *
 * A cycle-driven pipeline with a reorder buffer, register renaming,
 * branch/target/return prediction, store buffer, and -- centrally
 * for the paper's model -- *delayed authorization*: every memory or
 * register access runs two concurrent tracks,
 *
 *   - an authorization track (permission check, branch resolution,
 *     address disambiguation, abort detection) that completes after
 *     a latency, and
 *   - a data track that accesses and forwards data speculatively,
 *
 * and the winner of that race is determined by cache state, exactly
 * as Section IV of the paper describes.  Architectural state is
 * rolled back on squash; cache state is not (unless a defense says
 * otherwise).
 *
 * Vulnerability flags (VulnConfig) enable/disable each transient
 * forwarding path; defense flags (HwDefenseConfig) implement the
 * paper's strategies 1-4 as literal scheduler dependencies.
 *
 * Simplifications (documented in DESIGN.md): unlimited functional
 * units (latencies still apply), metadata-only cache, harness-level
 * covert-channel receiver helpers.
 */

#ifndef SPECSEC_UARCH_CPU_HH
#define SPECSEC_UARCH_CPU_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "buffers.hh"
#include "cache.hh"
#include "isa.hh"
#include "memory.hh"
#include "predictor.hh"

namespace specsec::uarch
{

/** Which transient-forwarding paths the hardware has (default: all,
 *  i.e. a pre-2018 out-of-order core). */
struct VulnConfig
{
    bool meltdown = true;    ///< forward real data past privilege fault
    bool l1tf = true;        ///< not-present fault reads L1 by paddr
    bool mds = true;         ///< faulting load forwards buffer residue
    bool lazyFp = true;      ///< FP read forwards stale FPU state
    bool storeBypass = true; ///< predict no-alias past unresolved stores
    bool msr = true;         ///< RDMSR forwards before privilege check
    bool taa = true;         ///< aborting-transaction loads forward residue
};

/** Hardware defense knobs, each mapped to a paper strategy. */
struct HwDefenseConfig
{
    /// Strategy 1: loads do not access until non-speculative
    /// (context-sensitive fencing in hardware).
    bool fenceSpeculativeLoads = false;

    /// Strategy 2: speculatively loaded data is not forwarded to
    /// dependents until the load is safe (NDA / SpecShield /
    /// ConTExT).
    bool blockSpeculativeForwarding = false;

    /// Strategy 3: loads whose address depends on speculative data
    /// do not execute (STT / SpecShieldERP+).
    bool blockTaintedTransmit = false;

    /// Strategy 3: speculative loads do not modify the cache; the
    /// line is installed at commit (InvisiSpec / SafeSpec).
    bool invisibleSpeculation = false;

    /// Strategy 3: cache lines installed by squashed loads are
    /// invalidated on squash (CleanupSpec).
    bool cleanupSpec = false;

    /// Strategy 3: speculative loads may proceed only on a cache
    /// hit; misses wait for authorization (Conditional Speculation /
    /// Efficient Invisible Speculation).
    bool conditionalSpeculation = false;

    /// Strategy 3: DAWG-style domain-partitioned cache.
    bool partitionedCache = false;

    /// Strategy 4: flush predictor, BTB and RSB on context switch
    /// (IBPB / AMD predictor invalidate).
    bool flushPredictorOnContextSwitch = false;

    /// Retpoline model: indirect branches do not speculate via the
    /// BTB; fetch stalls until the target resolves.
    bool noIndirectPrediction = false;

    /// Disable conditional branch prediction: fetch stalls at every
    /// conditional branch until it resolves.
    bool noBranchPrediction = false;

    /// VERW-style buffer clearing on context switch (MDS defense).
    bool clearBuffersOnContextSwitch = false;

    /// Eager FPU state switching (LazyFP defense).
    bool eagerFpuSwitch = false;

    /// SSBB/SSBS: loads wait for all older store addresses.
    bool safeStoreBypass = false;
};

/** Core configuration. */
struct CpuConfig
{
    std::size_t robSize = 48;
    unsigned fetchWidth = 2;
    unsigned commitWidth = 4;

    /// Latency of a permission / fault / ownership check from
    /// address-ready to authorization-resolved.  The paper's
    /// "delayed authorization" (step 2).
    unsigned permCheckLatency = 30;

    /// Extra cycles from operands-ready to branch resolution.
    unsigned branchResolveLatency = 2;

    /// Extra cycles from dispatch to return-target resolution.
    unsigned retResolveLatency = 2;

    /// Cycles between a faulting commit and the squash taking
    /// effect (exception delivery); the transient window tail.
    unsigned exceptionDeliveryLatency = 16;

    /// Cycles from arming to a TSX asynchronous abort squash.
    unsigned txnAbortDetectLatency = 30;

    /// Spoiler: penalty for a 4KB-aliased store-buffer conflict.
    unsigned partialAliasPenalty = 12;

    /// Spoiler: additional penalty for a 1MB physical alias.
    unsigned physAliasPenalty = 60;

    std::size_t rsbDepth = 16;
    std::size_t lfbEntries = 10;

    CacheConfig cache;
    VulnConfig vuln;
    HwDefenseConfig defense;
};

/** Counters for perf and experiment reporting. */
struct CpuStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t squashed = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t exceptions = 0;
    std::uint64_t memOrderViolations = 0;
    std::uint64_t speculativeFills = 0;
    std::uint64_t transientForwards = 0; ///< faulty data forwarded
};

/**
 * Fixed-capacity contiguous ring: the ROB's storage.
 *
 * The reorder buffer is touched every cycle by every pipeline
 * stage (executeStage walks all of it; the safety predicates scan
 * prefixes of it), and profiling the sweep hot path showed
 * std::deque's segmented storage costing real time there.  A ring
 * over one flat vector keeps all in-flight entries contiguous
 * while preserving the deque operations the pipeline needs:
 * push_back (dispatch), pop_front (commit), truncate (squash drops
 * a suffix), and stable logical indexing (0 = oldest).
 *
 * Capacity normally never grows — fetch stalls when the ROB is
 * full — but push_back re-linearizes into doubled storage rather
 * than corrupt state if a caller overfills.
 */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity = 0)
        : slots_(capacity ? capacity : 1)
    {
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return slots_[wrap(head_ + i)]; }
    const T &
    operator[](std::size_t i) const
    {
        return slots_[wrap(head_ + i)];
    }

    T &front() { return slots_[head_]; }
    T &back() { return (*this)[size_ - 1]; }

    void
    push_back(T value)
    {
        if (size_ == slots_.size())
            grow();
        slots_[wrap(head_ + size_)] = std::move(value);
        ++size_;
    }

    /**
     * Append a default-initialized entry and hand back a reference,
     * so callers can fill large entries in place instead of
     * building them on the stack and copying.
     */
    T &
    emplace_back()
    {
        if (size_ == slots_.size())
            grow();
        T &slot = slots_[wrap(head_ + size_)];
        slot = T{};
        ++size_;
        return slot;
    }

    void
    pop_front()
    {
        head_ = wrap(head_ + 1);
        --size_;
    }

    /** Keep the oldest @p count entries, drop the rest. */
    void truncate(std::size_t count) { size_ = count; }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    // head_ < capacity and i <= capacity, so one conditional
    // subtraction wraps (capacity need not be a power of two).
    std::size_t
    wrap(std::size_t i) const
    {
        return i < slots_.size() ? i : i - slots_.size();
    }

    void
    grow()
    {
        std::vector<T> bigger(slots_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = std::move((*this)[i]);
        slots_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

/** Outcome of a run. */
struct RunResult
{
    bool halted = false;
    bool faulted = false;       ///< ended on an unhandled fault
    FaultKind fault = FaultKind::None; ///< last delivered fault
    Addr faultPc = 0;
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
};

/**
 * The out-of-order speculative CPU.
 */
class Cpu
{
  public:
    Cpu(const CpuConfig &config, Memory &memory, PageTable &pt);

    const CpuConfig &config() const { return config_; }

    /** Load the instruction memory (Harvard-style). */
    void loadProgram(const Program &program);

    /** @name Architectural state
     *  @{ */
    Word reg(RegId r) const { return regs_.at(r); }
    void setReg(RegId r, Word value) { regs_.at(r) = value; }
    Privilege privilege() const { return privilege_; }
    void setPrivilege(Privilege p) { privilege_ = p; }
    bool enclaveMode() const { return enclaveMode_; }
    void setEnclaveMode(bool on) { enclaveMode_ = on; }
    Word msr(std::size_t index) const { return msrs_.at(index); }
    void setMsr(std::size_t index, Word value)
    {
        msrs_.at(index) = value;
    }
    /** @} */

    /** Where a delivered exception redirects (nullopt: run ends). */
    void setFaultHandler(std::optional<Addr> handler)
    {
        faultHandler_ = handler;
    }

    /** Extra return-target resolution delay (Spectre-RSB setup). */
    void setRetResolveExtraDelay(std::uint64_t cycles)
    {
        retExtraDelay_ = cycles;
    }

    /**
     * Context switch: changes the running context id (FPU ownership
     * domain, cache partition domain) and applies the configured
     * context-switch defenses.
     */
    void contextSwitch(int ctx);
    int context() const { return ctx_; }

    /** IBPB: explicit predictor barrier. */
    void ibpb();

    /** Run from @p start_pc until halt, unhandled fault or budget. */
    RunResult run(Addr start_pc, std::uint64_t max_cycles = 1000000);

    /** @name Covert-channel receiver helpers (harness level)
     *  These mimic the receiver's committed loads/flushes without a
     *  pipeline round trip.
     *  @{ */

    /** Timed load that fills the cache (prime / warm semantics). */
    std::uint32_t timedAccess(Addr vaddr);

    /**
     * Timed measurement that does not change cache state.  Real
     * Flush+Reload probes the last-level cache, where page-strided
     * probe slots never conflict; the simulator only models an L1,
     * so a state-changing sweep would evict yet-unmeasured slots --
     * an artifact, not a property of the channel.  See DESIGN.md.
     */
    std::uint32_t timedProbe(Addr vaddr);

    void flushLineVirt(Addr vaddr);
    void warmLine(Addr vaddr);
    /** @} */

    /** @name Component access
     *  @{ */
    Cache &cache() { return cache_; }
    Memory &memory() { return mem_; }
    PageTable &pageTable() { return pt_; }
    BranchPredictor &branchPredictor() { return bp_; }
    Btb &btb() { return btb_; }
    Rsb &rsb() { return rsb_; }
    StoreBuffer &storeBuffer() { return sb_; }
    LineFillBuffer &lineFillBuffer() { return lfb_; }
    LoadPort &loadPort() { return loadPort_; }
    FpuState &fpu() { return fpu_; }
    /** @} */

    const CpuStats &stats() const { return stats_; }
    void resetStats() { stats_ = CpuStats{}; }

    /**
     * Copy every mutable piece of @p other's state into this core,
     * leaving only the Memory/PageTable references in place: the
     * warm-attack snapshot restore primitive (attacks/snapshot.hh).
     * Both cores must have been built from the same CpuConfig.
     * Afterwards this core behaves cycle-for-cycle like @p other
     * would, provided the backing memory image matches too — all
     * pipeline scheduling is relative to cycle_, which is copied.
     *
     * Maintainers: cpu.cc lists the members explicitly; a new
     * mutable member MUST be added there or warm-snapshot restores
     * silently diverge (the golden byte-identity suite in
     * tests/snapshot_test.cc is the tripwire).
     */
    void copyStateFrom(const Cpu &other);

  private:
    struct RobEntry
    {
        Instruction inst;
        Addr pc = 0;
        std::uint64_t seq = 0;
        Addr predNext = 0;

        // Source operands.
        bool needA = false, needB = false;
        bool aReady = false, bReady = false;
        Word valA = 0, valB = 0;
        std::uint64_t prodA = 0, prodB = 0;
        std::uint64_t prodAAbs = 0, prodBAbs = 0;
        bool hasProdA = false, hasProdB = false;
        std::uint64_t taintA = 0, taintB = 0;
        bool taintAOn = false, taintBOn = false;

        // Result / forwarding.
        bool executed = false; ///< result computation scheduled/done
        std::uint64_t doneCycle = 0;
        Word result = 0;
        bool hasResult = false;
        bool forwardable = false;
        std::uint64_t resultTaint = 0;
        bool resultTaintOn = false;

        // Memory.
        bool addrDone = false;
        Addr vaddr = 0, paddr = 0;
        bool paddrValid = false;
        FaultKind fault = FaultKind::None;
        bool dataStarted = false, dataDone = false;
        std::uint64_t dataDoneCycle = 0;
        bool insertedLine = false;
        Addr insertedLineAddr = 0;
        bool needCommitInsert = false;

        // Authorization track.
        bool authStarted = false, authDone = false;
        std::uint64_t authDoneCycle = 0;

        // Control flow.
        bool resolved = false;
        bool resolveScheduled = false;
        std::uint64_t resolveCycle = 0;
        Addr actualNext = 0;
        bool actualTaken = false;
        bool mispredicted = false;

        // Transactions.
        bool txnMember = false;

        bool completed = false;
    };

    void stepCycle();
    void fetchStage();
    void executeStage();
    void commitStage();

    void dispatch(const Instruction &inst, Addr pc);
    void progress(RobEntry &e, std::size_t index,
                  bool fence_blocked);
    void progressLoad(RobEntry &e, std::size_t index);
    void progressStore(RobEntry &e, std::size_t index);
    void captureOperands(RobEntry &e);
    void finishExecution(RobEntry &e);

    /** Is any older entry still an unresolved speculation source? */
    bool underOlderSpeculation(std::size_t index) const;

    /** Own auth done, no fault, not under older speculation. */
    bool entrySafe(const RobEntry &e, std::size_t index) const;

    /** Is the taint (source seq) still live? */
    bool taintLive(std::uint64_t source_seq) const;

    RobEntry *findBySeq(std::uint64_t seq);
    const RobEntry *findBySeq(std::uint64_t seq) const;
    std::optional<std::size_t> indexOfSeq(std::uint64_t seq) const;

    /** Squash all entries at positions >= @p first_removed. */
    void squashFrom(std::size_t first_removed, Addr redirect_pc);

    void applyCommit(RobEntry &e);
    void deliverException(const RobEntry &head);
    void checkMemOrderViolation(const RobEntry &store);
    Word selectResidue(Addr vaddr) const;
    Addr retActualTarget(std::size_t ret_index) const;
    void rebuildRename();
    void recomputeFetchTxn();

    Word evalAlu(const RobEntry &e) const;
    static bool evalCond(Cond cond, Word a, Word b);

    CpuConfig config_;
    Memory &mem_;
    PageTable &pt_;
    Cache cache_;
    BranchPredictor bp_;
    Btb btb_;
    Rsb rsb_;
    StoreBuffer sb_;
    LineFillBuffer lfb_;
    LoadPort loadPort_;
    FpuState fpu_;

    Program program_;
    std::array<Word, kNumIntRegs> regs_{};
    std::array<Word, kNumMsrs> msrs_{};
    Privilege privilege_ = Privilege::User;
    bool enclaveMode_ = false;
    int ctx_ = 0;
    std::optional<Addr> faultHandler_;
    std::uint64_t retExtraDelay_ = 0;

    /**
     * Rename-table entry: the producing instruction's seq plus its
     * *absolute* ROB position (total pops + logical index).  The
     * absolute position never changes over an entry's lifetime —
     * commits shift every logical index down together and squashes
     * only drop younger entries — so operand capture resolves the
     * producer with one bounds-checked array access instead of a
     * per-cycle binary search.
     */
    struct RenameRef
    {
        std::uint64_t seq = 0;
        std::uint64_t abs = 0;
    };

    // Pipeline state.
    RingBuffer<RobEntry> rob_;
    std::uint64_t seqCounter_ = 0;
    std::uint64_t robPops_ = 0; ///< lifetime pop_front count
    std::array<std::optional<RenameRef>, kNumIntRegs> rename_{};
    std::vector<Addr> archCallStack_;
    Addr fetchPc_ = 0;
    bool fetchHalted_ = false;
    std::uint64_t cycle_ = 0;

    // Exception delivery.
    struct PendingException
    {
        std::uint64_t deliverCycle;
        FaultKind fault;
        Addr pc;
        bool isTxnAbort = false;
    };
    std::optional<PendingException> pendingException_;

    // Fetch stall for serialized control flow (retpoline model /
    // disabled branch prediction): the seq of the unresolved branch.
    std::optional<std::uint64_t> fetchStallSeq_;

    // In-flight Lfence/Mfence count, so executeStage skips its
    // oldest-fence scan on the (common) fence-free cycles.
    std::size_t fencesInRob_ = 0;

    // Transactions.  A faulting access inside a transaction raises a
    // TSX abort (redirect to the abort target) instead of an
    // architectural exception; abort detection has its own latency,
    // which is the TAA transient window.
    bool txnActive_ = false;
    bool fetchInTxn_ = false;
    Addr txnAbortTarget_ = 0;

    // Run bookkeeping.
    bool runHalted_ = false;
    bool runFaulted_ = false;
    FaultKind lastFault_ = FaultKind::None;
    Addr lastFaultPc_ = 0;

    CpuStats stats_;
};

} // namespace specsec::uarch

#endif // SPECSEC_UARCH_CPU_HH
