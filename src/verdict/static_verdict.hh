/**
 * @file
 * The static verdict backend: judge a campaign cell from the Fig. 9
 * program analyzer instead of the simulator or the hand-curated
 * graph model.  A cell is a Leak iff an exploitable flow survives
 * in the attack's static program after the cell's software
 * mitigation is applied *as a program rewrite* (fence insertion,
 * address masking); hardware defenses and out-of-program
 * mitigations (KPTI, RSB stuffing, L1 flush) are outside a
 * program-level analyzer's scope and yield Undecided.
 *
 * Also home of the mitigation-as-transform hooks: fence-harden
 * (tool::autoPatch) and mask-harden (array_index_nospec-style index
 * clamping), each statically verified post-transform with patch
 * overhead reported.
 */

#ifndef SPECSEC_VERDICT_STATIC_VERDICT_HH
#define SPECSEC_VERDICT_STATIC_VERDICT_HH

#include "core/catalog.hh"

namespace specsec::verdict
{

/** A static verdict plus the applied rewrite's overhead. */
struct StaticJudgement
{
    core::ModelJudgement judgement;
    /// Rewrite overhead (zero when no transform applied).
    std::size_t fencesInserted = 0;
    std::size_t masksInserted = 0;
    std::size_t extraInstructions = 0;
};

/**
 * Judge one cell statically for a cataloged attack:
 *
 *  1. Options are canonicalized through the descriptor's
 *     canonicalOptions hook (when present), so toggles the runner
 *     provably ignores never reach the analyzer — exactly the
 *     scoping the simulator applies.
 *  2. Required-vulnerability gate (shared with the model backend):
 *     ablated forwarding path -> Inapplicable.
 *  3. Timing gate (shared): off-default timing knob -> Undecided.
 *  4. Any hardware defense knob -> Undecided (the analyzer sees the
 *     program, not the core).
 *  5. Out-of-program mitigations (kpti, rsbStuffing, flushL1OnExit)
 *     -> Undecided; softwareLfence / addressMasking are applied as
 *     program rewrites.
 *  6. The (possibly rewritten) program goes through
 *     tool::analyzeSpec: an exploitable flow -> Leak, else Blocked.
 */
StaticJudgement staticJudgement(const core::AttackDescriptor &attack,
                                const uarch::CpuConfig &config,
                                const attacks::AttackOptions &options);

/**
 * Judge a cell through the catalog: dispatch on @p variant, or
 * return Undecided when the attack exposes no static program.
 */
StaticJudgement
judgeScenarioStatic(core::AttackVariant variant,
                    const uarch::CpuConfig &config,
                    const attacks::AttackOptions &options);

/**
 * Fence-harden transform: run tool::autoPatch over the spec's
 * program until no exploitable flow remains.  Closes misprediction
 * leaks at the bounds check and fences the exfiltration chain of
 * Meltdown-type shapes (whose intra-instruction races persist as
 * residualRaces — the paper's relaxed strategy-3 success
 * criterion).
 */
core::TransformResult
fenceHardenTransform(const core::StaticProgramSpec &spec);

/**
 * Mask-harden transform: insert an `and index, index, mask` clamp
 * (array_index_nospec) after the first conditional branch, using
 * the spec's declared maskReg/maskValue.  Specs without a mask
 * point (no branch or no declared mask register) come back
 * unmodified and unverified.
 */
core::TransformResult
maskHardenTransform(const core::StaticProgramSpec &spec);

} // namespace specsec::verdict

#endif // SPECSEC_VERDICT_STATIC_VERDICT_HH
