#include "static_verdict.hh"

#include <string>

#include "defense/mitigations.hh"
#include "model.hh"
#include "tool/patcher.hh"

namespace specsec::verdict
{

using attacks::AttackOptions;
using core::AttackVariant;
using core::ModelJudgement;
using core::ModelVerdict;
using core::StaticProgramSpec;
using core::TransformResult;
using uarch::CpuConfig;

namespace
{

StaticJudgement
undecided(std::string why)
{
    StaticJudgement j;
    j.judgement.verdict = ModelVerdict::Undecided;
    j.judgement.evidence = std::move(why);
    return j;
}

/** Name of the first set hardware defense knob, or nullptr. */
const char *
firstHwDefenseKnob(const uarch::HwDefenseConfig &d)
{
    if (d.fenceSpeculativeLoads)
        return "fenceSpeculativeLoads";
    if (d.blockSpeculativeForwarding)
        return "blockSpeculativeForwarding";
    if (d.blockTaintedTransmit)
        return "blockTaintedTransmit";
    if (d.invisibleSpeculation)
        return "invisibleSpeculation";
    if (d.cleanupSpec)
        return "cleanupSpec";
    if (d.conditionalSpeculation)
        return "conditionalSpeculation";
    if (d.partitionedCache)
        return "partitionedCache";
    if (d.flushPredictorOnContextSwitch)
        return "flushPredictorOnContextSwitch";
    if (d.noIndirectPrediction)
        return "noIndirectPrediction";
    if (d.noBranchPrediction)
        return "noBranchPrediction";
    if (d.clearBuffersOnContextSwitch)
        return "clearBuffersOnContextSwitch";
    if (d.eagerFpuSwitch)
        return "eagerFpuSwitch";
    if (d.safeStoreBypass)
        return "safeStoreBypass";
    return nullptr;
}

/** First out-of-program software mitigation set, or nullptr. */
const char *
firstOutOfProgramToggle(const AttackOptions &options)
{
    if (options.kpti)
        return "kpti";
    if (options.rsbStuffing)
        return "rsbStuffing";
    if (options.flushL1OnExit)
        return "flushL1OnExit";
    return nullptr;
}

std::optional<std::size_t>
firstBranchPc(const uarch::Program &program)
{
    for (std::size_t pc = 0; pc < program.size(); ++pc)
        if (program.at(pc).op == uarch::Opcode::Branch)
            return pc;
    return std::nullopt;
}

} // namespace

StaticJudgement
staticJudgement(const core::AttackDescriptor &attack,
                const CpuConfig &config, const AttackOptions &options)
{
    if (!attack.staticProgram) {
        return undecided("no static program registered for '" +
                         attack.name + "'");
    }

    // 1. Canonicalize: drop toggles this attack's runner ignores, so
    //    e.g. a fence-harden column over Meltdown judges the same
    //    cell the simulator runs (the toggle is a no-op there).
    const AttackOptions canonical =
        attack.canonicalOptions ? attack.canonicalOptions(options)
                                : options;

    // 2. Required-vulnerability gate (shared with the model).
    bool present = true;
    if (const char *path = detail::requiredVulnPath(
            attack.id, config.vuln, present);
        path && !present) {
        StaticJudgement j;
        j.judgement.verdict = ModelVerdict::Inapplicable;
        j.judgement.evidence =
            std::string("core ablates the '") + path +
            "' forwarding path this attack transmits through";
        return j;
    }

    // 3. Timing gate (shared).  Canonical options: a timing option
    //    the runner never reads cannot make the cell timing-bound.
    std::string knob;
    if (detail::timingKnobOffDefault(config, canonical, knob)) {
        return undecided("off-default timing knob '" + knob +
                         "'; static analysis orders operations but "
                         "counts no cycles");
    }

    // 4. Hardware defenses act in the core, not the program text.
    if (const char *hw = firstHwDefenseKnob(config.defense)) {
        return undecided(std::string("hardware defense '") + hw +
                         "' is outside the program-level analyzer's "
                         "scope");
    }

    // 5. Out-of-program software mitigations.
    if (const char *sw = firstOutOfProgramToggle(canonical)) {
        return undecided(std::string("mitigation '") + sw +
                         "' acts outside the program (page tables / "
                         "RSB / L1), which the analyzer does not "
                         "model");
    }

    // 5b. In-program mitigations become program rewrites.
    StaticProgramSpec spec = attack.staticProgram();
    StaticJudgement j;
    std::string rewrite;
    if (canonical.softwareLfence) {
        j.fencesInserted =
            defense::insertLfenceAfterBranches(spec.program);
        j.extraInstructions += j.fencesInserted;
        rewrite = "lfence-after-branch rewrite (" +
                  std::to_string(j.fencesInserted) + " fences)";
    }
    if (canonical.addressMasking) {
        const std::optional<std::size_t> branch =
            firstBranchPc(spec.program);
        if (!branch || !spec.maskReg || !spec.maskValue) {
            return undecided(
                "addressMasking set but the static program declares "
                "no mask point (branch + maskReg/maskValue)");
        }
        defense::insertMaskAfterBranch(spec.program, *branch,
                                       *spec.maskReg, *spec.maskValue);
        j.masksInserted = 1;
        j.extraInstructions += 1;
        rewrite += rewrite.empty() ? "" : " + ";
        rewrite += "array_index_nospec index clamp";
    }

    // 6. Analyze the (possibly rewritten) program.
    const tool::AnalysisResult analysis =
        tool::analyzeSpec(tool::toAnalysisSpec(spec));
    if (analysis.vulnerable) {
        j.judgement.verdict = ModelVerdict::Leak;
        j.judgement.evidence =
            "static analysis finds " +
            std::to_string(analysis.findings.size()) +
            " missing security dependencies" +
            (rewrite.empty() ? "" : " after " + rewrite) + "; e.g. " +
            (analysis.findings.empty()
                 ? std::string("(no finding detail)")
                 : analysis.findings.front().description);
    } else {
        j.judgement.verdict = ModelVerdict::Blocked;
        j.judgement.evidence =
            rewrite.empty()
                ? std::string(
                      "static analysis finds no exploitable flow")
                : rewrite + " leaves no exploitable flow (" +
                      std::to_string(analysis.findings.size()) +
                      " residual races)";
    }
    j.judgement.rationale =
        "program-level Fig. 9 analysis: exploitable flows in the "
        "attack's static program, not simulated timing";
    return j;
}

StaticJudgement
judgeScenarioStatic(AttackVariant variant, const CpuConfig &config,
                    const AttackOptions &options)
{
    const core::AttackDescriptor *d =
        core::ScenarioCatalog::instance().findAttack(variant);
    if (d == nullptr)
        return undecided("no attack registered for this variant");
    return staticJudgement(*d, config, options);
}

TransformResult
fenceHardenTransform(const StaticProgramSpec &spec)
{
    const tool::PatchResult patch =
        tool::autoPatch(tool::toAnalysisSpec(spec));
    TransformResult result;
    result.hardened = spec;
    result.hardened.program = patch.patched;
    result.fencesInserted = patch.fencesInserted;
    result.extraInstructions =
        patch.patched.size() - spec.program.size();
    result.verified = patch.verified;
    result.residualRaces = patch.residualRaces;
    return result;
}

TransformResult
maskHardenTransform(const StaticProgramSpec &spec)
{
    TransformResult result;
    result.hardened = spec;
    const std::optional<std::size_t> branch =
        firstBranchPc(spec.program);
    if (!branch || !spec.maskReg || !spec.maskValue) {
        const tool::AnalysisResult analysis =
            tool::analyzeSpec(tool::toAnalysisSpec(spec));
        result.verified = !analysis.vulnerable;
        result.residualRaces = analysis.findings.size();
        return result;
    }
    defense::insertMaskAfterBranch(result.hardened.program, *branch,
                                   *spec.maskReg, *spec.maskValue);
    result.masksInserted = 1;
    result.extraInstructions = 1;
    const tool::AnalysisResult analysis =
        tool::analyzeSpec(tool::toAnalysisSpec(result.hardened));
    result.verified = !analysis.vulnerable;
    result.residualRaces = analysis.findings.size();
    return result;
}

} // namespace specsec::verdict
