#include "differential.hh"

#include <map>
#include <sstream>

#include "tool/jsonio.hh"
#include "tool/report.hh"

namespace specsec::verdict
{

namespace
{

constexpr const char *kSchemaTag = "specsec-differential-v1";

using tool::json::Cursor;

std::optional<Disagreement>
parseEntry(Cursor &cur)
{
    Disagreement d;
    if (!cur.expect('{'))
        return std::nullopt;
    do {
        const std::string key = cur.parseString();
        if (cur.failed() || !cur.expect(':'))
            return std::nullopt;
        if (key == "key")
            d.key = cur.parseString();
        else if (key == "row")
            d.row = cur.parseString();
        else if (key == "col")
            d.col = cur.parseString();
        else if (key == "model")
            d.model = cur.parseString();
        else if (key == "simulator")
            d.simulator = cur.parseString();
        else if (key == "evidence")
            d.evidence = cur.parseString();
        else if (key == "rationale")
            d.rationale = cur.parseString();
        else {
            cur.fail("unknown disagreement key '" + key + "'");
            return std::nullopt;
        }
    } while (!cur.failed() && cur.peekConsume(','));
    if (!cur.expect('}'))
        return std::nullopt;
    return d;
}

} // anonymous namespace

std::string
disagreementJson(const DisagreementSet &set)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"" << kSchemaTag << "\",\n  \"spec\": \""
       << tool::jsonEscape(set.spec) << "\",\n  \"disagreements\": [";
    for (std::size_t i = 0; i < set.disagreements.size(); ++i) {
        const Disagreement &d = set.disagreements[i];
        os << (i ? "," : "") << "\n    {\"key\": \""
           << tool::jsonEscape(d.key) << "\",\n     \"row\": \""
           << tool::jsonEscape(d.row) << "\", \"col\": \""
           << tool::jsonEscape(d.col) << "\",\n     \"model\": \""
           << tool::jsonEscape(d.model) << "\", \"simulator\": \""
           << tool::jsonEscape(d.simulator)
           << "\",\n     \"evidence\": \""
           << tool::jsonEscape(d.evidence)
           << "\",\n     \"rationale\": \""
           << tool::jsonEscape(d.rationale) << "\"}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

std::optional<DisagreementSet>
parseDisagreementJson(const std::string &text, std::string *error)
{
    Cursor cur(text);
    DisagreementSet set;
    const auto failed = [&]() -> std::optional<DisagreementSet> {
        if (error)
            *error = cur.error();
        return std::nullopt;
    };

    if (!cur.expect('{'))
        return failed();
    bool sawSchema = false;
    do {
        const std::string key = cur.parseString();
        if (cur.failed() || !cur.expect(':'))
            return failed();
        if (key == "schema") {
            const std::string tag = cur.parseString();
            if (tag != kSchemaTag) {
                cur.fail("unsupported schema '" + tag + "'");
                return failed();
            }
            sawSchema = true;
        } else if (key == "spec") {
            set.spec = cur.parseString();
        } else if (key == "disagreements") {
            if (!cur.expect('['))
                return failed();
            if (!cur.peekConsume(']')) {
                do {
                    auto d = parseEntry(cur);
                    if (!d)
                        return failed();
                    set.disagreements.push_back(std::move(*d));
                } while (!cur.failed() && cur.peekConsume(','));
                if (!cur.expect(']'))
                    return failed();
            }
        } else {
            cur.fail("unknown key '" + key + "'");
            return failed();
        }
    } while (!cur.failed() && cur.peekConsume(','));
    if (cur.failed() || !cur.expect('}'))
        return failed();
    if (!cur.atEnd()) {
        cur.fail("trailing content after disagreement object");
        return failed();
    }
    if (!sawSchema) {
        cur.fail("missing \"schema\" tag");
        return failed();
    }
    return set;
}

std::vector<std::string>
compareDisagreements(const DisagreementSet &pinned,
                     const DisagreementSet &fresh)
{
    std::vector<std::string> drift;
    std::map<std::string, const Disagreement *> pinnedByKey;
    for (const Disagreement &d : pinned.disagreements)
        pinnedByKey.emplace(d.key, &d);

    for (const Disagreement &d : fresh.disagreements) {
        const auto hit = pinnedByKey.find(d.key);
        if (hit == pinnedByKey.end()) {
            drift.push_back("unpinned disagreement at (" + d.row +
                            " x " + d.col + "): model " + d.model +
                            " vs simulator " + d.simulator + " [" +
                            d.evidence + "]");
            continue;
        }
        const Disagreement &p = *hit->second;
        if (p.model != d.model || p.simulator != d.simulator) {
            drift.push_back("disagreement at (" + d.row + " x " +
                            d.col + ") changed: pinned model " +
                            p.model + "/sim " + p.simulator +
                            " -> fresh model " + d.model + "/sim " +
                            d.simulator);
        }
        pinnedByKey.erase(hit);
    }
    for (const auto &[key, p] : pinnedByKey) {
        drift.push_back("pinned disagreement vanished at (" + p->row +
                        " x " + p->col + "): model " + p->model +
                        " vs simulator " + p->simulator +
                        " (rationale: " + p->rationale + ")");
    }
    return drift;
}

} // namespace specsec::verdict
