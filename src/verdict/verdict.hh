/**
 * @file
 * Execution backends for campaign grids.
 *
 * The simulator is the cycle-accurate ground truth; the model backend
 * (model.hh) decides cells analytically on the attack graph alone.
 * Differential runs both and flags per-cell disagreement; Triage runs
 * the model over the whole grid first and simulates only the frontier
 * the model cannot decide (plus one representative per class of cells
 * that are provably identical to the runner).  Static judges cells
 * from the Fig. 9 program analyzer over the attack's static program
 * (static_verdict.hh) and flags disagreement with the simulator like
 * Differential does.
 */

#ifndef SPECSEC_VERDICT_VERDICT_HH
#define SPECSEC_VERDICT_VERDICT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace specsec::verdict
{

/** How a campaign cell gets its verdict. */
enum class VerdictBackend : std::uint8_t
{
    Simulator = 0,    ///< cycle-accurate execution only (default)
    Model = 1,        ///< analytic graph model only, no simulation
    Differential = 2, ///< both; disagreements are flagged per cell
    Triage = 3,       ///< model first, simulate only the frontier
    Static = 4,       ///< Fig. 9 program analysis beside simulation
};

/** Canonical lowercase name ("simulator", "model", ...). */
const char *backendName(VerdictBackend backend);

/** All canonical backend names, in enum order. */
std::vector<std::string> backendNames();

/**
 * Parse a backend name (folded: case and punctuation insensitive).
 * @return true and set @p out on success.
 */
bool parseBackend(const std::string &name, VerdictBackend &out);

/**
 * "unknown backend 'simluator' (did you mean: simulator?)" — the
 * same suggestion machinery the catalog uses for attack names.
 */
std::string unknownBackendMessage(const std::string &name);

} // namespace specsec::verdict

#endif // SPECSEC_VERDICT_VERDICT_HH
