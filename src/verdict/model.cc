#include "model.hh"

#include <initializer_list>
#include <string>

#include "core/attack_graph.hh"
#include "core/security_dependency.hh"

namespace specsec::verdict
{

using attacks::AttackOptions;
using core::AttackGraph;
using core::AttackVariant;
using core::DefenseStrategy;
using core::ModelJudgement;
using core::ModelVerdict;
using uarch::CpuConfig;

namespace
{

bool
oneOf(AttackVariant v, std::initializer_list<AttackVariant> set)
{
    for (const AttackVariant s : set) {
        if (v == s)
            return true;
    }
    return false;
}

/// Bounds-bypass family: the software LFENCE / address-masking
/// mitigations guard the bounds check these variants bypass.
bool
inBoundsFamily(AttackVariant v)
{
    return oneOf(v, {AttackVariant::SpectreV1, AttackVariant::SpectreV1_1,
                     AttackVariant::SpectreV1_2});
}

/// Conditional-branch prediction family: variants whose trigger is a
/// predicted branch the "disable branch prediction" knob stalls.
bool
inPredictionFamily(AttackVariant v)
{
    return inBoundsFamily(v) || v == AttackVariant::SpectreV2;
}

/// Cross-protection-domain predictor attacks: training happens in the
/// attacker's context, the trigger fires in the victim's, so
/// context-switch predictor flushes and domain partitioning bite.
bool
inCrossContextPredictorFamily(AttackVariant v)
{
    return oneOf(v, {AttackVariant::SpectreV2, AttackVariant::SpectreRsb});
}

/// MDS buffer-residue family (VERW clearing is the defense).
bool
inMdsFamily(AttackVariant v)
{
    return oneOf(v, {AttackVariant::Ridl, AttackVariant::ZombieLoad,
                     AttackVariant::Fallout, AttackVariant::Taa,
                     AttackVariant::Cacheout});
}

bool
inForeshadowFamily(AttackVariant v)
{
    return oneOf(v, {AttackVariant::Foreshadow, AttackVariant::ForeshadowOs,
                     AttackVariant::ForeshadowVmm});
}

} // anonymous namespace

namespace detail
{

const char *
requiredVulnPath(AttackVariant v, const uarch::VulnConfig &vuln,
                 bool &present)
{
    present = true;
    switch (v) {
      case AttackVariant::Meltdown:
        present = vuln.meltdown;
        return "meltdown";
      case AttackVariant::MeltdownV3a:
        present = vuln.msr;
        return "msr";
      case AttackVariant::Foreshadow:
      case AttackVariant::ForeshadowOs:
      case AttackVariant::ForeshadowVmm:
        present = vuln.l1tf;
        return "l1tf";
      case AttackVariant::LazyFp:
        present = vuln.lazyFp;
        return "lazyFp";
      case AttackVariant::SpectreV4:
        present = vuln.storeBypass;
        return "storeBypass";
      case AttackVariant::Ridl:
      case AttackVariant::ZombieLoad:
      case AttackVariant::Fallout:
      case AttackVariant::Cacheout:
        present = vuln.mds;
        return "mds";
      case AttackVariant::Taa:
        present = vuln.taa;
        return "taa";
      default:
        return nullptr;
    }
}

} // namespace detail

namespace
{

ModelJudgement
undecided(std::string why)
{
    ModelJudgement j;
    j.verdict = ModelVerdict::Undecided;
    j.evidence = std::move(why);
    return j;
}

} // anonymous namespace

namespace detail
{

/**
 * Timing gate: the attack graph orders operations but counts no
 * cycles, so any off-default timing quantity makes the cell's
 * outcome simulation-only.  Defense toggles, vulnerability ablations
 * and the covert-channel choice are structural, not timing, and are
 * never gated here.
 */
bool
timingKnobOffDefault(const CpuConfig &config,
                     const AttackOptions &options, std::string &knob)
{
    static const CpuConfig kDefaultConfig;
    static const AttackOptions kDefaultOptions;
    const auto check = [&](bool offDefault, const char *name) {
        if (offDefault && knob.empty())
            knob = name;
        return offDefault;
    };
    bool off = false;
    off |= check(config.robSize != kDefaultConfig.robSize, "robSize");
    off |= check(config.fetchWidth != kDefaultConfig.fetchWidth,
                 "fetchWidth");
    off |= check(config.commitWidth != kDefaultConfig.commitWidth,
                 "commitWidth");
    off |= check(config.permCheckLatency !=
                     kDefaultConfig.permCheckLatency,
                 "permCheckLatency");
    off |= check(config.branchResolveLatency !=
                     kDefaultConfig.branchResolveLatency,
                 "branchResolveLatency");
    off |= check(config.retResolveLatency !=
                     kDefaultConfig.retResolveLatency,
                 "retResolveLatency");
    off |= check(config.exceptionDeliveryLatency !=
                     kDefaultConfig.exceptionDeliveryLatency,
                 "exceptionDeliveryLatency");
    off |= check(config.txnAbortDetectLatency !=
                     kDefaultConfig.txnAbortDetectLatency,
                 "txnAbortDetectLatency");
    off |= check(config.partialAliasPenalty !=
                     kDefaultConfig.partialAliasPenalty,
                 "partialAliasPenalty");
    off |= check(config.physAliasPenalty !=
                     kDefaultConfig.physAliasPenalty,
                 "physAliasPenalty");
    off |= check(config.rsbDepth != kDefaultConfig.rsbDepth, "rsbDepth");
    off |= check(config.lfbEntries != kDefaultConfig.lfbEntries,
                 "lfbEntries");
    off |= check(config.cache.sets != kDefaultConfig.cache.sets,
                 "cache.sets");
    off |= check(config.cache.ways != kDefaultConfig.cache.ways,
                 "cache.ways");
    off |= check(config.cache.lineSize != kDefaultConfig.cache.lineSize,
                 "cache.lineSize");
    off |= check(config.cache.hitLatency !=
                     kDefaultConfig.cache.hitLatency,
                 "cache.hitLatency");
    off |= check(config.cache.missLatency !=
                     kDefaultConfig.cache.missLatency,
                 "cache.missLatency");
    off |= check(options.secretLen != kDefaultOptions.secretLen,
                 "secretLen");
    off |= check(options.trainingRounds != kDefaultOptions.trainingRounds,
                 "trainingRounds");
    off |= check(options.delayAuthorization !=
                     kDefaultOptions.delayAuthorization,
                 "delayAuthorization");
    return off;
}

} // namespace detail

namespace
{

/** One defense mechanism the model understands. */
struct MechanismRule
{
    /// Human label for evidence lines ("fenceSpeculativeLoads",
    /// "kpti", ...): the knob, not the marketing name.
    const char *label;

    /// Paper strategy the mechanism realizes.
    DefenseStrategy strategy;

    /// Is the knob set in this cell?
    bool (*active)(const CpuConfig &, const AttackOptions &);

    /// Does the mechanism's security dependency land in this
    /// variant's graph at all?  (kpti guards the kernel mapping only
    /// Meltdown uses; VERW clears buffers only MDS samples; ...)
    bool (*inScope)(AttackVariant);

    /// Known, deliberate model-vs-simulator gap for part of the
    /// scope; pinned in golden/differential-*.json.  Null for rules
    /// whose graph verdict matches the simulator everywhere.
    const char *(*divergence)(AttackVariant);
};

const char *
noBranchPredictionDivergence(AttackVariant v)
{
    if (v != AttackVariant::SpectreV2)
        return nullptr;
    return "graph model: stalling prediction cuts mistrain->trigger "
           "influence; simulator: the stall applies to conditional "
           "branches only, the poisoned indirect-branch target still "
           "steers the transient path";
}

constexpr MechanismRule kRules[] = {
    // HwDefenseConfig, field order.
    {"fenceSpeculativeLoads", DefenseStrategy::PreventAccess,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.fenceSpeculativeLoads;
     },
     [](AttackVariant) { return true; }, nullptr},
    {"blockSpeculativeForwarding", DefenseStrategy::PreventUse,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.blockSpeculativeForwarding;
     },
     [](AttackVariant) { return true; }, nullptr},
    {"blockTaintedTransmit", DefenseStrategy::PreventSend,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.blockTaintedTransmit;
     },
     [](AttackVariant) { return true; }, nullptr},
    {"invisibleSpeculation", DefenseStrategy::PreventSend,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.invisibleSpeculation;
     },
     [](AttackVariant) { return true; }, nullptr},
    {"cleanupSpec", DefenseStrategy::PreventSend,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.cleanupSpec;
     },
     [](AttackVariant) { return true; }, nullptr},
    {"conditionalSpeculation", DefenseStrategy::PreventSend,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.conditionalSpeculation;
     },
     [](AttackVariant) { return true; }, nullptr},
    // DAWG partitions the cache between protection domains: it cuts
    // the transmit only when sender and receiver sit in different
    // domains, i.e. the cross-context predictor attacks.
    {"partitionedCache", DefenseStrategy::PreventSend,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.partitionedCache;
     },
     inCrossContextPredictorFamily, nullptr},
    // IBPB-style flush kills training that crosses the context
    // switch; same-context mistraining (v1 family) retrains after.
    {"flushPredictorOnContextSwitch", DefenseStrategy::ClearPredictions,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.flushPredictorOnContextSwitch;
     },
     inCrossContextPredictorFamily, nullptr},
    {"noIndirectPrediction", DefenseStrategy::ClearPredictions,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.noIndirectPrediction;
     },
     inCrossContextPredictorFamily, nullptr},
    {"noBranchPrediction", DefenseStrategy::ClearPredictions,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.noBranchPrediction;
     },
     inPredictionFamily, noBranchPredictionDivergence},
    {"clearBuffersOnContextSwitch", DefenseStrategy::PreventAccess,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.clearBuffersOnContextSwitch;
     },
     inMdsFamily, nullptr},
    {"eagerFpuSwitch", DefenseStrategy::PreventAccess,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.eagerFpuSwitch;
     },
     [](AttackVariant v) { return v == AttackVariant::LazyFp; }, nullptr},
    {"safeStoreBypass", DefenseStrategy::PreventAccess,
     [](const CpuConfig &c, const AttackOptions &) {
         return c.defense.safeStoreBypass;
     },
     [](AttackVariant v) { return v == AttackVariant::SpectreV4; },
     nullptr},
    // Software mitigations (AttackOptions), declaration order.
    {"flushL1OnExit", DefenseStrategy::PreventAccess,
     [](const CpuConfig &, const AttackOptions &o) {
         return o.flushL1OnExit;
     },
     inForeshadowFamily, nullptr},
    {"kpti", DefenseStrategy::PreventAccess,
     [](const CpuConfig &, const AttackOptions &o) { return o.kpti; },
     [](AttackVariant v) { return v == AttackVariant::Meltdown; },
     nullptr},
    {"rsbStuffing", DefenseStrategy::ClearPredictions,
     [](const CpuConfig &, const AttackOptions &o) {
         return o.rsbStuffing;
     },
     [](AttackVariant v) { return v == AttackVariant::SpectreRsb; },
     nullptr},
    {"softwareLfence", DefenseStrategy::PreventAccess,
     [](const CpuConfig &, const AttackOptions &o) {
         return o.softwareLfence;
     },
     inBoundsFamily, nullptr},
    {"addressMasking", DefenseStrategy::PreventAccess,
     [](const CpuConfig &, const AttackOptions &o) {
         return o.addressMasking;
     },
     inBoundsFamily, nullptr},
};

} // anonymous namespace

ModelJudgement
modelJudgement(AttackVariant variant, const CpuConfig &config,
               const AttackOptions &options)
{
    // 1. Required-vulnerability gate (decidable whatever the timing
    //    knobs say: an ablated forwarding path never forwards).
    bool present = true;
    if (const char *path =
            detail::requiredVulnPath(variant, config.vuln, present);
        path && !present) {
        ModelJudgement j;
        j.verdict = ModelVerdict::Inapplicable;
        j.evidence = std::string("core ablates the '") + path +
                     "' forwarding path this attack transmits through";
        return j;
    }

    // 2. Timing gate.
    std::string knob;
    if (detail::timingKnobOffDefault(config, options, knob)) {
        return undecided("off-default timing knob '" + knob +
                         "'; the graph orders operations but counts "
                         "no cycles");
    }

    const core::AttackDescriptor *d =
        core::ScenarioCatalog::instance().findAttack(variant);
    if (!d || !d->buildGraph)
        return undecided("no attack graph registered for this variant");

    // 3. Mechanism rules: first active in-scope mechanism whose
    //    security dependencies kill every escaping flow wins.
    for (const MechanismRule &rule : kRules) {
        if (!rule.active(config, options) || !rule.inScope(variant))
            continue;
        AttackGraph g = d->buildGraph(options.channel);
        const std::vector<graph::Edge> inserted =
            core::applyDefense(g, rule.strategy);
        if (inserted.empty())
            continue; // strategy has no target in this graph
        if (g.isVulnerable())
            continue; // applied but insufficient
        ModelJudgement j;
        j.verdict = ModelVerdict::Blocked;
        if (rule.strategy == DefenseStrategy::ClearPredictions) {
            j.evidence = std::string("PredictorFlush spliced into every "
                                     "mistrain->trigger influence "
                                     "(strategy 4, ") +
                         rule.label + ")";
        } else {
            j.evidence =
                "security dependency " +
                core::describeEdge(g, inserted.front()) + " (strategy " +
                std::to_string(static_cast<int>(rule.strategy)) + ", " +
                rule.label + ") cuts every escaping flow";
        }
        if (rule.divergence) {
            if (const char *why = rule.divergence(variant))
                j.rationale = why;
        }
        return j;
    }

    // 4. Baseline analysis on the undefended graph.
    const AttackGraph g = d->buildGraph(options.channel);
    const core::VulnerabilityWitness w = core::analyzeVulnerability(g);
    ModelJudgement j;
    j.verdict = w.vulnerable ? ModelVerdict::Leak : ModelVerdict::Blocked;
    j.evidence = w.summary;
    return j;
}

ModelJudgement
judgeScenario(AttackVariant variant, const CpuConfig &config,
              const AttackOptions &options)
{
    const core::AttackDescriptor *d =
        core::ScenarioCatalog::instance().findAttack(variant);
    if (!d || !d->modelVerdict) {
        return undecided(
            "no model-verdict hook registered for this attack");
    }
    return d->modelVerdict(config, options);
}

core::ModelVerdictFn
builtinModelVerdict(AttackVariant variant)
{
    return [variant](const CpuConfig &config,
                     const AttackOptions &options) {
        return modelJudgement(variant, config, options);
    };
}

core::CanonicalOptionsFn
builtinCanonicalOptions(AttackVariant variant)
{
    return [variant](const AttackOptions &options) {
        AttackOptions canon; // defaults
        canon.channel = options.channel;
        canon.secretLen = options.secretLen;
        switch (variant) {
          case AttackVariant::SpectreV1:
            canon.softwareLfence = options.softwareLfence;
            canon.addressMasking = options.addressMasking;
            canon.trainingRounds = options.trainingRounds;
            canon.delayAuthorization = options.delayAuthorization;
            break;
          case AttackVariant::SpectreV1_1:
          case AttackVariant::SpectreV1_2:
            canon.softwareLfence = options.softwareLfence;
            canon.addressMasking = options.addressMasking;
            canon.trainingRounds = options.trainingRounds;
            break;
          case AttackVariant::SpectreV2:
            canon.trainingRounds = options.trainingRounds;
            break;
          case AttackVariant::SpectreRsb:
            canon.trainingRounds = options.trainingRounds;
            canon.rsbStuffing = options.rsbStuffing;
            break;
          case AttackVariant::Meltdown:
            canon.kpti = options.kpti;
            break;
          case AttackVariant::Foreshadow:
          case AttackVariant::ForeshadowOs:
          case AttackVariant::ForeshadowVmm:
            canon.flushL1OnExit = options.flushL1OnExit;
            break;
          default:
            // MeltdownV3a, LazyFp, SpectreV4, MDS family, Lvi: the
            // runner reads channel and secretLen only.
            break;
        }
        return canon;
    };
}

} // namespace specsec::verdict
