/**
 * @file
 * The analytic verdict model: predict a campaign cell's outcome from
 * the attack graph alone (Theorem 1 / Fig. 8), no simulation.
 *
 * The model is graph-faithful, not golden-fitted: each defense knob
 * maps to the paper strategy it implements plus a mechanism scope
 * (which attacks' graphs the mechanism's security dependency actually
 * lands in), and blocking is decided by applyDefense() +
 * AttackGraph::isVulnerable() on the variant's real graph.  Where the
 * graph model and the cycle-accurate simulator genuinely part ways
 * (e.g. "disable branch prediction" vs Spectre v2's poisoned BTB
 * target), the rule carries a rationale and the divergence is pinned
 * in golden/differential-*.json rather than papered over.
 */

#ifndef SPECSEC_VERDICT_MODEL_HH
#define SPECSEC_VERDICT_MODEL_HH

#include "core/catalog.hh"

namespace specsec::verdict
{

/**
 * Judge one cell analytically for a built-in variant:
 *
 *  1. Required-vulnerability gate: if the core ablates a forwarding
 *     path the attack transmits through -> Inapplicable.
 *  2. Timing gate: any off-default timing quantity (CPU latency /
 *     width knob, cache geometry, secret length, training rounds,
 *     authorization-delay ablation) -> Undecided naming the knob;
 *     the graph has no notion of cycle counts.
 *  3. Mechanism rules: each active defense toggle / mitigation
 *     option in scope applies its paper strategy to a fresh copy of
 *     the variant's attack graph; the first one whose inserted
 *     security dependencies kill every escaping flow -> Blocked.
 *  4. Otherwise the baseline analysis runs: a surviving secret flow
 *     -> Leak.
 */
core::ModelJudgement modelJudgement(core::AttackVariant variant,
                                    const uarch::CpuConfig &config,
                                    const attacks::AttackOptions &options);

/**
 * Judge a cell through the catalog: dispatch to the descriptor's
 * modelVerdict hook, or return Undecided ("no model-verdict hook
 * registered") when the attack has none.
 */
core::ModelJudgement judgeScenario(core::AttackVariant variant,
                                   const uarch::CpuConfig &config,
                                   const attacks::AttackOptions &options);

/**
 * The modelVerdict hook registered for built-in variant @p variant
 * (binds modelJudgement).
 */
core::ModelVerdictFn builtinModelVerdict(core::AttackVariant variant);

/**
 * The canonicalOptions hook for built-in variant @p variant: resets
 * every AttackOptions field the variant's runner provably never
 * reads to its default, keeping exactly the fields the runner
 * distinguishes (channel and secretLen always; each toggle only for
 * the family whose runner branches on it).
 */
core::CanonicalOptionsFn
builtinCanonicalOptions(core::AttackVariant variant);

namespace detail
{

/**
 * The forwarding path (VulnConfig flag) the attack transmits
 * through, or nullptr when it needs none that can be ablated.
 * Sets @p present to whether the core still has the path.  Shared
 * by the model and static backends (gate 1 of both).
 */
const char *requiredVulnPath(core::AttackVariant variant,
                             const uarch::VulnConfig &vuln,
                             bool &present);

/**
 * Timing gate shared by the model and static backends: true when
 * any off-default timing quantity (CPU latency / width knob, cache
 * geometry, secret length, training rounds, authorization-delay
 * ablation) makes the cell's outcome simulation-only; names the
 * first such knob in @p knob.
 */
bool timingKnobOffDefault(const uarch::CpuConfig &config,
                          const attacks::AttackOptions &options,
                          std::string &knob);

} // namespace detail

} // namespace specsec::verdict

#endif // SPECSEC_VERDICT_MODEL_HH
