/**
 * @file
 * Differential-backend disagreement pins.
 *
 * The differential backend runs every cell through both the
 * simulator and the analytic model; each cell where a *decided*
 * model verdict contradicts the simulator's leak bit is a
 * disagreement.  Known divergences — each a deliberate, documented
 * gap between the graph model and the cycle-accurate machine — are
 * pinned in golden/differential-<spec>.json with a one-line
 * rationale.  Any disagreement outside the pins (or a pinned one
 * that vanishes) fails the regression gate: it is either a simulator
 * bug or a model insight, and both deserve a loud CI failure.
 */

#ifndef SPECSEC_VERDICT_DIFFERENTIAL_HH
#define SPECSEC_VERDICT_DIFFERENTIAL_HH

#include <optional>
#include <string>
#include <vector>

namespace specsec::verdict
{

/** One model-vs-simulator disagreement on one grid cell. */
struct Disagreement
{
    /// Scenario key of the cell (campaign::scenarioKey): the stable
    /// identity disagreements are matched on.
    std::string key;

    /// Report coordinates, for humans reading the pin file.
    std::string row;
    std::string col;

    /// "leak" / "blocked": what each side concluded.
    std::string model;
    std::string simulator;

    /// The model's graph-derived evidence for its verdict.
    std::string evidence;

    /// One-line justification for why the divergence is expected.
    /// Auto-filled from the model rule's rationale when recording;
    /// empty in a *fresh* (unpinned) disagreement report.
    std::string rationale;

    bool operator==(const Disagreement &) const = default;
};

/** The persisted pin set of one golden spec. */
struct DisagreementSet
{
    std::string spec;
    std::vector<Disagreement> disagreements;
};

/**
 * Serialize as stable, line-per-entry JSON ("specsec-differential-v1"),
 * byte-identical for equal sets.
 */
std::string disagreementJson(const DisagreementSet &set);

/** Parse disagreementJson() output; nullopt + @p error on bad input. */
std::optional<DisagreementSet>
parseDisagreementJson(const std::string &text,
                      std::string *error = nullptr);

/**
 * Compare fresh disagreements against the committed pins, matching
 * by scenario key.  @return human-readable drift lines (empty when
 * the run reproduces the pins exactly): one line per unpinned fresh
 * disagreement, per pinned-but-vanished entry, and per key whose
 * verdict pair changed.
 */
std::vector<std::string> compareDisagreements(
    const DisagreementSet &pinned, const DisagreementSet &fresh);

} // namespace specsec::verdict

#endif // SPECSEC_VERDICT_DIFFERENTIAL_HH
