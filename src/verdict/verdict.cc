#include "verdict.hh"

#include "core/catalog.hh"

namespace specsec::verdict
{

const char *
backendName(VerdictBackend backend)
{
    switch (backend) {
      case VerdictBackend::Simulator: return "simulator";
      case VerdictBackend::Model: return "model";
      case VerdictBackend::Differential: return "differential";
      case VerdictBackend::Triage: return "triage";
      case VerdictBackend::Static: return "static";
    }
    return "unknown";
}

std::vector<std::string>
backendNames()
{
    return {backendName(VerdictBackend::Simulator),
            backendName(VerdictBackend::Model),
            backendName(VerdictBackend::Differential),
            backendName(VerdictBackend::Triage),
            backendName(VerdictBackend::Static)};
}

bool
parseBackend(const std::string &name, VerdictBackend &out)
{
    const std::string key = core::foldName(name);
    for (const VerdictBackend backend :
         {VerdictBackend::Simulator, VerdictBackend::Model,
          VerdictBackend::Differential, VerdictBackend::Triage,
          VerdictBackend::Static}) {
        if (key == core::foldName(backendName(backend))) {
            out = backend;
            return true;
        }
    }
    return false;
}

std::string
unknownBackendMessage(const std::string &name)
{
    // A closed five-name set: when nothing is close enough to
    // suggest, list every valid backend instead of answering bare.
    std::vector<std::string> suggestions =
        core::suggestNames(backendNames(), name);
    if (suggestions.empty())
        suggestions = backendNames();
    return core::unknownNameMessage("backend", name, suggestions);
}

} // namespace specsec::verdict
