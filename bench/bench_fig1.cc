/**
 * @file
 * Reproduction of Fig. 1: the Spectre v1/v2 attack graph — nodes,
 * dependency edges, the speculative window, and the two races
 * ("Load S" and "Load R" against branch resolution).  Emits DOT.
 */

#include "bench_util.hh"
#include "core/variants.hh"
#include "graph/dot.hh"

using namespace specsec;
using namespace specsec::core;

int
main()
{
    for (AttackVariant v :
         {AttackVariant::SpectreV1, AttackVariant::SpectreV2}) {
        const AttackGraph g = buildAttackGraph(v);
        bench::header("Fig. 1 attack graph: " +
                      std::string(variantInfo(v).name));
        bench::describeGraph(g);
    }

    const AttackGraph g = buildAttackGraph(AttackVariant::SpectreV1);
    graph::DotOptions options;
    options.name = "spectre_v1";
    options.nodeStyle = [&g](graph::NodeId u) -> std::string {
        switch (g.role(u)) {
          case NodeRole::Authorization:
            return "fillcolor=orange,style=filled";
          case NodeRole::SecretAccess:
            return "fillcolor=red,style=filled,fontcolor=white";
          case NodeRole::Send:
            return "fillcolor=lightblue,style=filled";
          case NodeRole::Receive:
            return "fillcolor=lightgreen,style=filled";
          default:
            return "";
        }
    };
    bench::header("Fig. 1 DOT (render with graphviz)");
    std::printf("%s", graph::toDot(g.tsg(), options).c_str());
    return 0;
}
