/**
 * @file
 * Covert-channel characterization (Section II-C): hit/miss latency
 * separation and recovery reliability for Flush+Reload and
 * Prime+Probe, plus the classification table of the paper (hit vs
 * miss, access vs operation based).
 */

#include "attacks/attack_kit.hh"
#include "bench_util.hh"
#include "uarch/covert.hh"

using namespace specsec;
using namespace specsec::uarch;
using attacks::Layout;

int
main()
{
    bench::header("Section II-C: cache timing channel "
                  "classification (all four classes implemented)");
    std::printf("  hit  + access based:    Flush+Reload\n");
    std::printf("  miss + access based:    Prime+Probe\n");
    std::printf("  hit  + operation based: cache collision\n");
    std::printf("  miss + operation based: Evict+Time\n");

    Memory mem(Layout::kMemorySize);
    PageTable pt;
    pt.mapRange(0, Layout::kMemorySize, PageOwner::User, true, true);
    CpuConfig cfg;
    Cpu cpu(cfg, mem, pt);

    bench::header("Flush+Reload timing separation");
    FlushReloadChannel fr(cpu, Layout::kProbeArray, 256, kPageSize);
    fr.setup();
    cpu.timedAccess(Layout::kProbeArray + 83 * kPageSize);
    const ChannelRecovery r = fr.recover();
    std::uint32_t hits = 0, misses = 0, hit_lat = 0, miss_lat = 0;
    for (std::uint32_t lat : r.latencies) {
        if (lat < fr.threshold()) {
            ++hits;
            hit_lat = lat;
        } else {
            ++misses;
            miss_lat = lat;
        }
    }
    std::printf("  slots: %u hit (latency %u), %u miss (latency "
                "%u), threshold %u\n",
                hits, hit_lat, misses, miss_lat, fr.threshold());
    std::printf("  recovered slot: %d (expected 83)\n", r.value);

    bench::header("Flush+Reload reliability over 256 symbols");
    std::size_t correct = 0;
    for (int value = 0; value < 256; ++value) {
        fr.setup();
        cpu.timedAccess(Layout::kProbeArray +
                        static_cast<Addr>(value) * kPageSize);
        if (fr.recover().value == value)
            ++correct;
    }
    std::printf("  %zu/256 symbols recovered correctly (%.1f%%)\n",
                correct, correct / 2.56);

    bench::header("Prime+Probe reliability over 256 symbols");
    PrimeProbeChannel pp(cpu, Layout::kEvictArray, 256);
    correct = 0;
    for (int value = 0; value < 256; ++value) {
        pp.prime();
        cpu.timedAccess(Layout::kProbeArray +
                        static_cast<Addr>(value) * 64);
        if (pp.recover().value == value)
            ++correct;
    }
    std::printf("  %zu/256 symbols recovered correctly (%.1f%%)\n",
                correct, correct / 2.56);

    bench::header("Evict+Time reliability over 64 symbols");
    {
        Program victim;
        victim.emit(load8(6, 3, 0));
        victim.emit(halt());
        cpu.loadProgram(victim);
        EvictTimeChannel et(cpu, Layout::kEvictArray, 64);
        std::size_t et_correct = 0;
        for (int value = 0; value < 64; ++value) {
            const Addr line = Layout::kProbeArray +
                              static_cast<Addr>(value) * 64;
            cpu.setReg(3, line);
            const ChannelRecovery r = et.recover(
                [&] { cpu.warmLine(line); },
                [&] { return cpu.run(0).cycles; });
            if (r.value == value)
                ++et_correct;
        }
        std::printf("  %zu/64 symbols recovered correctly (%.1f%%)\n",
                    et_correct, et_correct * 100.0 / 64.0);
    }

    bench::header("cache-collision reliability over 64 symbols");
    {
        Program victim;
        victim.emit(load8(6, 3, 0));  // table[secret]
        victim.emit(andImm(7, 6, 0)); // dependency chain
        victim.emit(add(8, 4, 7));
        victim.emit(load8(9, 8, 0));  // table[guess]
        victim.emit(halt());
        cpu.loadProgram(victim);
        std::size_t cc_correct = 0;
        for (int value = 0; value < 64; ++value) {
            cpu.setReg(3, Layout::kProbeArray +
                              static_cast<Addr>(value) * 64);
            const ChannelRecovery r = recoverByCollision(
                64,
                [&] {
                    for (int i = 0; i < 64; ++i)
                        cpu.flushLineVirt(Layout::kProbeArray +
                                          static_cast<Addr>(i) * 64);
                },
                [&](int guess) {
                    cpu.setReg(4,
                               Layout::kProbeArray +
                                   static_cast<Addr>(guess) * 64);
                    return cpu.run(0).cycles;
                });
            if (r.value == value)
                ++cc_correct;
        }
        std::printf("  %zu/64 symbols recovered correctly (%.1f%%)\n",
                    cc_correct, cc_correct * 100.0 / 64.0);
    }

    bench::header("channel bandwidth model");
    const CacheConfig &c = cfg.cache;
    const double fr_cycles_per_symbol =
        256.0 * c.hitLatency + c.missLatency; // reload sweep
    std::printf("  Flush+Reload: ~%.0f cycles per byte sweep "
                "(256-slot probe)\n",
                fr_cycles_per_symbol);
    std::printf("  Prime+Probe:  ~%.0f cycles per byte sweep "
                "(256 sets x %zu ways)\n",
                256.0 * c.ways * c.hitLatency + c.missLatency,
                c.ways);
    return 0;
}
