/**
 * @file
 * Reproduction of Fig. 3: the Meltdown attack graph with the load
 * instruction broken into micro-operations (permission check racing
 * the secret read) — the paper's intra-instruction modeling.
 */

#include "bench_util.hh"
#include "core/variants.hh"
#include "graph/dot.hh"

using namespace specsec;
using namespace specsec::core;

int
main()
{
    const AttackGraph g = buildAttackGraph(AttackVariant::Meltdown);
    bench::header("Fig. 3: TSG model of the Meltdown attack "
                  "(intra-instruction micro-ops)");
    bench::describeGraph(g);

    bench::header("Fig. 3 DOT");
    graph::DotOptions options;
    options.name = "meltdown";
    std::printf("%s", graph::toDot(g.tsg(), options).c_str());
    return 0;
}
