/**
 * @file
 * Substrate performance (google-benchmark): simulator speed,
 * end-to-end attack cost, covert-channel sweeps and graph
 * construction.  After the google-benchmark suites run, a
 * self-timed page-table translation micro-bench compares the flat
 * dense table against a reference hash-map implementation (the
 * pre-flat design) and writes the headline numbers to
 * BENCH_perf.json — the translate_flat_speedup ratio is what the
 * CI perf gate (bench/perf_gate.cc) pins, being a same-machine
 * same-process ratio and therefore machine-independent.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "attacks/runner.hh"
#include "bench_util.hh"
#include "core/security_dependency.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::uarch;

namespace
{

void
BM_SimulatorAluLoop(benchmark::State &state)
{
    Memory mem(1 << 20);
    PageTable pt;
    pt.mapRange(0, 1 << 20, PageOwner::User, true, true);
    Cpu cpu(CpuConfig{}, mem, pt);
    Program p;
    p.emit(movImm(1, 0));
    p.emit(movImm(2, 0));
    p.emit(movImm(3, 2000));
    const std::size_t loop = p.size();
    p.emit(add(2, 2, 1));
    p.emit(addImm(1, 1, 1));
    p.emit(branch(Cond::Ltu, 1, 3,
                  static_cast<std::int64_t>(loop)));
    p.emit(halt());
    cpu.loadProgram(p);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        const RunResult r = cpu.run(0);
        instructions += r.committed;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["instructions/s"] = benchmark::Counter(
        static_cast<double>(instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorAluLoop);

void
BM_SpectreV1EndToEnd(benchmark::State &state)
{
    attacks::AttackOptions opt;
    opt.secretLen = 4;
    for (auto _ : state) {
        const auto r = attacks::runSpectreV1(CpuConfig{}, opt);
        benchmark::DoNotOptimize(r.accuracy);
    }
}
BENCHMARK(BM_SpectreV1EndToEnd);

void
BM_MeltdownEndToEnd(benchmark::State &state)
{
    attacks::AttackOptions opt;
    opt.secretLen = 4;
    for (auto _ : state) {
        const auto r = attacks::runMeltdown(CpuConfig{}, opt);
        benchmark::DoNotOptimize(r.accuracy);
    }
}
BENCHMARK(BM_MeltdownEndToEnd);

void
BM_AttackGraphBuild(benchmark::State &state)
{
    for (auto _ : state) {
        for (core::AttackVariant v : core::allVariants()) {
            const auto g = core::buildAttackGraph(v);
            benchmark::DoNotOptimize(g.tsg().nodeCount());
        }
    }
}
BENCHMARK(BM_AttackGraphBuild);

void
BM_ModelDefenseSweep(benchmark::State &state)
{
    for (auto _ : state) {
        for (core::AttackVariant v : core::allVariants()) {
            const auto g = core::buildAttackGraph(v);
            for (auto s : core::allDefenseStrategies())
                benchmark::DoNotOptimize(core::defenseBlocks(g, s));
        }
    }
}
BENCHMARK(BM_ModelDefenseSweep);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache{CacheConfig{}};
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a));
        a += 64;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_PageTableTranslate(benchmark::State &state)
{
    PageTable pt;
    pt.mapRange(0x100000, 0x300000, PageOwner::User, true, true);
    Addr a = 0x100000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pt.translate(a, AccessType::Read, Privilege::User));
        a = 0x100000 + ((a + 64) & 0x2fffff);
    }
}
BENCHMARK(BM_PageTableTranslate);

/**
 * Reference page table with the pre-flat storage — a VPN-keyed hash
 * map — and translate() logic identical to PageTable's.  Kept here,
 * not in the library, purely as the baseline side of the
 * translate_flat_speedup ratio.
 */
struct MapPageTable
{
    std::unordered_map<Addr, Pte> pages;

    void
    mapRange(Addr base, Addr length, PageOwner owner,
             bool user_accessible, bool writable)
    {
        for (Addr va = base; va < base + length; va += kPageSize) {
            Pte pte;
            pte.physPage = va / kPageSize;
            pte.userAccessible = user_accessible;
            pte.writable = writable;
            pte.owner = owner;
            pages[va / kPageSize] = pte;
        }
    }

    Translation
    translate(Addr vaddr, AccessType type, Privilege privilege,
              bool enclave_mode = false) const
    {
        Translation t;
        const auto it = pages.find(vaddr / kPageSize);
        if (it == pages.end()) {
            t.fault = FaultKind::NotMapped;
            return t;
        }
        const Pte &pte = it->second;
        t.paddr = pte.physPage * kPageSize + (vaddr % kPageSize);
        t.paddrValid = true;
        if (!pte.present) {
            t.fault = FaultKind::NotPresent;
            return t;
        }
        if (pte.reservedBit) {
            t.fault = FaultKind::ReservedBit;
            return t;
        }
        switch (pte.owner) {
          case PageOwner::User:
            break;
          case PageOwner::Kernel:
            if (privilege == Privilege::User) {
                t.fault = FaultKind::Privilege;
                return t;
            }
            break;
          case PageOwner::Enclave:
            if (!enclave_mode) {
                t.fault = FaultKind::Privilege;
                return t;
            }
            break;
          case PageOwner::Vmm:
            if (privilege != Privilege::Vmm) {
                t.fault = FaultKind::Privilege;
                return t;
            }
            break;
        }
        const bool enclave_access =
            enclave_mode && pte.owner == PageOwner::Enclave;
        if (!pte.userAccessible && privilege == Privilege::User &&
            !enclave_access) {
            t.fault = FaultKind::Privilege;
            return t;
        }
        if (type == AccessType::Write && !pte.writable) {
            t.fault = FaultKind::WriteProtect;
            return t;
        }
        return t;
    }
};

/** Translations/sec over @p stream (one untimed warm-up pass). */
template <typename Table>
double
translateRate(const Table &table, const std::vector<Addr> &stream,
              int reps)
{
    std::uint64_t sink = 0;
    for (const Addr a : stream)
        sink += table
                    .translate(a, AccessType::Read, Privilege::User)
                    .paddr;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
        for (const Addr a : stream) {
            const Translation t =
                table.translate(a, AccessType::Read,
                                Privilege::User);
            sink += t.paddr + static_cast<unsigned>(t.fault);
        }
    }
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(sink);
    const double n =
        static_cast<double>(stream.size()) * reps;
    return secs > 0.0 ? n / secs : 0.0;
}

/** The canonical scenario layout's mapping calls, on either table. */
template <typename Table>
void
mapScenarioLayout(Table &table)
{
    table.mapRange(0x100000, 256 * kPageSize, PageOwner::User, true,
                   true);
    table.mapRange(0x200000, 0x10000, PageOwner::User, true, true);
    table.mapRange(0x300000, 0x8000, PageOwner::User, true, true);
    table.mapRange(0x310000, kPageSize, PageOwner::User, true, true);
    table.mapRange(0x320000, kPageSize, PageOwner::Kernel, false,
                   true);
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our own --json flag, then hand the rest to
    // google-benchmark as usual.
    std::string json_path = "BENCH_perf.json";
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Flat vs. hash-map translate micro-bench.  The address stream
    // mixes hot probe-array pages, victim data, an unmapped hole and
    // a privileged page, so both fault and fast paths are exercised
    // with an identical access pattern on both tables.
    PageTable flat;
    MapPageTable reference;
    mapScenarioLayout(flat);
    mapScenarioLayout(reference);
    std::vector<Addr> stream;
    stream.reserve(1 << 16);
    Addr a = 0x100000;
    for (std::size_t i = 0; i < (1u << 16); ++i) {
        stream.push_back(0x100000 + (a & 0x2fffff));
        a = a * 2654435761u + 64;
    }
    constexpr int kReps = 64;
    const double map_rate = translateRate(reference, stream, kReps);
    const double flat_rate = translateRate(flat, stream, kReps);
    const double flat_speedup =
        map_rate > 0.0 ? flat_rate / map_rate : 0.0;
    std::printf("\ntranslate: flat %.1fM/s  map %.1fM/s  "
                "speedup %.2fx\n",
                flat_rate / 1e6, map_rate / 1e6, flat_speedup);

    bench::BenchJson out;
    out.set("bench", std::string("perf"));
    out.set("translate_flat_per_sec", flat_rate);
    out.set("translate_map_per_sec", map_rate);
    out.set("translate_flat_speedup", flat_speedup);
    return out.save(json_path) ? 0 : 1;
}
