/**
 * @file
 * Substrate performance (google-benchmark): simulator speed,
 * end-to-end attack cost, covert-channel sweeps and graph
 * construction.
 */

#include <benchmark/benchmark.h>

#include "attacks/runner.hh"
#include "core/security_dependency.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::uarch;

namespace
{

void
BM_SimulatorAluLoop(benchmark::State &state)
{
    Memory mem(1 << 20);
    PageTable pt;
    pt.mapRange(0, 1 << 20, PageOwner::User, true, true);
    Cpu cpu(CpuConfig{}, mem, pt);
    Program p;
    p.emit(movImm(1, 0));
    p.emit(movImm(2, 0));
    p.emit(movImm(3, 2000));
    const std::size_t loop = p.size();
    p.emit(add(2, 2, 1));
    p.emit(addImm(1, 1, 1));
    p.emit(branch(Cond::Ltu, 1, 3,
                  static_cast<std::int64_t>(loop)));
    p.emit(halt());
    cpu.loadProgram(p);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        const RunResult r = cpu.run(0);
        instructions += r.committed;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["instructions/s"] = benchmark::Counter(
        static_cast<double>(instructions),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorAluLoop);

void
BM_SpectreV1EndToEnd(benchmark::State &state)
{
    attacks::AttackOptions opt;
    opt.secretLen = 4;
    for (auto _ : state) {
        const auto r = attacks::runSpectreV1(CpuConfig{}, opt);
        benchmark::DoNotOptimize(r.accuracy);
    }
}
BENCHMARK(BM_SpectreV1EndToEnd);

void
BM_MeltdownEndToEnd(benchmark::State &state)
{
    attacks::AttackOptions opt;
    opt.secretLen = 4;
    for (auto _ : state) {
        const auto r = attacks::runMeltdown(CpuConfig{}, opt);
        benchmark::DoNotOptimize(r.accuracy);
    }
}
BENCHMARK(BM_MeltdownEndToEnd);

void
BM_AttackGraphBuild(benchmark::State &state)
{
    for (auto _ : state) {
        for (core::AttackVariant v : core::allVariants()) {
            const auto g = core::buildAttackGraph(v);
            benchmark::DoNotOptimize(g.tsg().nodeCount());
        }
    }
}
BENCHMARK(BM_AttackGraphBuild);

void
BM_ModelDefenseSweep(benchmark::State &state)
{
    for (auto _ : state) {
        for (core::AttackVariant v : core::allVariants()) {
            const auto g = core::buildAttackGraph(v);
            for (auto s : core::allDefenseStrategies())
                benchmark::DoNotOptimize(core::defenseBlocks(g, s));
        }
    }
}
BENCHMARK(BM_ModelDefenseSweep);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache{CacheConfig{}};
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a));
        a += 64;
    }
}
BENCHMARK(BM_CacheAccess);

} // namespace

BENCHMARK_MAIN();
