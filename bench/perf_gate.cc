/**
 * @file
 * CI perf gate: checks the machine-readable bench results
 * (BENCH_campaign.json, BENCH_shard.json) against the committed
 * baseline bench/perf_baseline.json, failing the build when a
 * pinned metric regresses below its floor.
 *
 * The baseline follows the golden suite's tolerance idiom: every
 * gate carries an explicit absEps, and a metric passes while
 * value >= min - absEps.  Gated metrics must be machine-independent
 * ratios (fork_speedup is fork vs. rebuild measured in the same
 * process on the same machine), never absolute scenarios/sec —
 * those swing with the CI runner and would make the gate flaky.
 *
 * Usage: perf_gate [--baseline PATH] [--dir DIR]
 *   --baseline  gate definitions (default bench/perf_baseline.json)
 *   --dir       where the BENCH_*.json files live (default ".")
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "tool/jsonio.hh"
#include "tool/report.hh"

using namespace specsec;
using tool::json::Cursor;

namespace
{

/** One pinned metric: pass while value >= min - absEps. */
struct Gate
{
    std::string file; ///< bench results file, relative to --dir
    std::string key;
    double min = 0.0;
    double absEps = 0.0;
};

bool
parseBaseline(const std::string &text, std::vector<Gate> &gates,
              std::string &error)
{
    Cursor cur(text);
    if (!cur.expect('{'))
        return false;
    bool sawSchema = false;
    while (!cur.peekConsume('}')) {
        const std::string key = cur.parseString();
        if (!cur.expect(':'))
            break;
        if (key == "schema") {
            const std::string schema = cur.parseString();
            if (schema != "specsec-perf-baseline-v1") {
                error = "unknown baseline schema '" + schema + "'";
                return false;
            }
            sawSchema = true;
        } else if (key == "gates") {
            if (!cur.expect('['))
                break;
            while (!cur.peekConsume(']')) {
                Gate gate;
                if (!cur.expect('{'))
                    break;
                while (!cur.peekConsume('}')) {
                    const std::string field = cur.parseString();
                    if (!cur.expect(':'))
                        break;
                    if (field == "file")
                        gate.file = cur.parseString();
                    else if (field == "key")
                        gate.key = cur.parseString();
                    else if (field == "min")
                        gate.min = cur.parseDouble();
                    else if (field == "absEps")
                        gate.absEps = cur.parseDouble();
                    else {
                        error = "unknown gate field '" + field + "'";
                        return false;
                    }
                    cur.peekConsume(',');
                }
                gates.push_back(gate);
                cur.peekConsume(',');
            }
        } else {
            error = "unknown baseline field '" + key + "'";
            return false;
        }
        cur.peekConsume(',');
    }
    if (cur.failed()) {
        error = cur.error();
        return false;
    }
    if (!sawSchema) {
        error = "baseline is missing its schema tag";
        return false;
    }
    return true;
}

/**
 * Flat BENCH_*.json object -> numeric fields.  BenchJson writes
 * one object of string/number values with no nesting; string
 * values (the bench name) are skipped, numbers collected.  Parsed
 * by hand because tool::json::Cursor cannot look ahead past a
 * value's opening quote to skip it.
 */
bool
parseBenchResults(const std::string &text,
                  std::map<std::string, double> &values,
                  std::string &error)
{
    std::size_t pos = 0;
    const auto skipWs = [&] {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\t' || text[pos] == '\r'))
            ++pos;
    };
    const auto fail = [&](const std::string &message) {
        error = message + " at byte " + std::to_string(pos);
        return false;
    };
    const auto parseQuoted = [&](std::string &out) {
        if (pos >= text.size() || text[pos] != '"')
            return false;
        const std::size_t close = text.find('"', pos + 1);
        if (close == std::string::npos)
            return false;
        out = text.substr(pos + 1, close - pos - 1);
        pos = close + 1;
        return true;
    };

    skipWs();
    if (pos >= text.size() || text[pos++] != '{')
        return fail("expected '{'");
    skipWs();
    if (pos < text.size() && text[pos] == '}')
        return true;
    for (;;) {
        skipWs();
        std::string key;
        if (!parseQuoted(key))
            return fail("expected a key string");
        skipWs();
        if (pos >= text.size() || text[pos++] != ':')
            return fail("expected ':'");
        skipWs();
        if (pos < text.size() && text[pos] == '"') {
            std::string skipped;
            if (!parseQuoted(skipped))
                return fail("unterminated string value");
        } else {
            char *end = nullptr;
            const double value =
                std::strtod(text.c_str() + pos, &end);
            if (end == text.c_str() + pos)
                return fail("expected a number");
            values[key] = value;
            pos = static_cast<std::size_t>(end - text.c_str());
        }
        skipWs();
        if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
        }
        if (pos < text.size() && text[pos] == '}')
            return true;
        return fail("expected ',' or '}'");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path = "bench/perf_baseline.json";
    std::string dir = ".";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc)
            baseline_path = argv[++i];
        else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc)
            dir = argv[++i];
        else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            return 2;
        }
    }

    std::string text;
    if (!tool::readTextFile(baseline_path, text)) {
        std::fprintf(stderr, "perf gate: cannot read %s\n",
                     baseline_path.c_str());
        return 2;
    }
    std::vector<Gate> gates;
    std::string error;
    if (!parseBaseline(text, gates, error)) {
        std::fprintf(stderr, "perf gate: %s: %s\n",
                     baseline_path.c_str(), error.c_str());
        return 2;
    }
    if (gates.empty()) {
        std::fprintf(stderr, "perf gate: baseline pins nothing\n");
        return 2;
    }

    std::map<std::string, std::map<std::string, double>> loaded;
    bool ok = true;
    std::printf("%-20s %-32s %10s %10s  %s\n", "file", "metric",
                "value", "floor", "verdict");
    for (const Gate &gate : gates) {
        if (loaded.find(gate.file) == loaded.end()) {
            const std::string path = dir + "/" + gate.file;
            std::string bench_text;
            if (!tool::readTextFile(path, bench_text)) {
                std::fprintf(stderr,
                             "perf gate: cannot read %s\n",
                             path.c_str());
                return 2;
            }
            if (!parseBenchResults(bench_text, loaded[gate.file],
                                   error)) {
                std::fprintf(stderr, "perf gate: %s: %s\n",
                             path.c_str(), error.c_str());
                return 2;
            }
        }
        const auto &values = loaded[gate.file];
        const auto it = values.find(gate.key);
        if (it == values.end()) {
            std::printf("%-20s %-32s %10s %10.3f  MISSING\n",
                        gate.file.c_str(), gate.key.c_str(), "-",
                        gate.min);
            ok = false;
            continue;
        }
        const double floor = gate.min - gate.absEps;
        const bool pass = it->second >= floor;
        std::printf("%-20s %-32s %10.3f %10.3f  %s\n",
                    gate.file.c_str(), gate.key.c_str(),
                    it->second, floor, pass ? "ok" : "REGRESSED");
        ok &= pass;
    }
    std::printf("perf gate: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
