/**
 * @file
 * Verdict-backend throughput: the analytic model (verdict/model.hh)
 * judging the full variant x defense matrix vs. the cycle-accurate
 * simulator executing it, plus the triage backend's simulate
 * fraction (the share of unique cells the model could not settle).
 * The model-vs-simulator speedup is the number the CI perf gate
 * pins: the whole point of an analysis-only backend is that judging
 * a cell is at least an order of magnitude cheaper than simulating
 * it.  Writes the headline numbers to BENCH_verdict.json.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "verdict/model.hh"
#include "verdict/static_verdict.hh"
#include "verdict/verdict.hh"

using namespace specsec;
using namespace specsec::campaign;

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_verdict.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    bench::header("verdict backends: model vs. simulator");
    const ScenarioSpec spec = ScenarioSpec::defenseMatrix();
    const ExpandedGrid grid = dedupGrid(spec);
    std::printf("grid: %zu unique of %zu expanded scenarios\n",
                grid.uniqueIndices.size(), grid.expanded.size());

    // Warm-up (untimed): touches lazily initialized catalogs and
    // fills the scenario arena pool, so both timed passes below
    // measure steady state.
    CampaignEngine::Options serial_opts;
    serial_opts.workers = 1;
    CampaignEngine(serial_opts).run(spec);
    for (const std::size_t u : grid.uniqueIndices) {
        const Scenario &s = grid.expanded[u];
        verdict::judgeScenario(s.variant, s.config, s.options);
    }

    // Simulator: the serial engine run, so the per-cell rate is
    // comparable to the single-threaded judging loop below.
    const CampaignReport sim =
        CampaignEngine(serial_opts).run(spec);
    const double sim_rate = sim.scenariosPerSecond;

    // Model: judge every unique cell analytically.  Repeat the
    // sweep until the timed region is long enough for a stable
    // rate — one pass over a few hundred cells is microseconds.
    std::size_t decided = 0, undecided = 0;
    std::size_t passes = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double model_ms = 0.0;
    do {
        decided = undecided = 0;
        for (const std::size_t u : grid.uniqueIndices) {
            const Scenario &s = grid.expanded[u];
            const core::ModelJudgement judged =
                verdict::judgeScenario(s.variant, s.config,
                                       s.options);
            ++(judged.decided() ? decided : undecided);
        }
        ++passes;
        model_ms = millisSince(t0);
    } while (model_ms < 200.0);
    const double judged_cells = static_cast<double>(
        passes * grid.uniqueIndices.size());
    const double model_rate =
        model_ms > 0.0 ? 1000.0 * judged_cells / model_ms : 0.0;
    const double speedup =
        sim_rate > 0.0 ? model_rate / sim_rate : 0.0;

    bench::rule();
    std::printf("%-10s %8s %14s\n", "backend", "unique",
                "cells/sec");
    std::printf("%-10s %8zu %14.1f\n", "simulator",
                sim.uniqueCount, sim_rate);
    std::printf("%-10s %8zu %14.1f\n", "model",
                grid.uniqueIndices.size(), model_rate);
    std::printf("model vs. simulator: %.1fx "
                "(%zu decided, %zu undecided)\n",
                speedup, decided, undecided);

    // Static: the Fig. 9 program analyzer judging the same grid.
    // Each decided cell rebuilds and analyzes the attack's static
    // program (graph construction + race queries), so it is slower
    // than the rule-table model but must still beat cycle-accurate
    // simulation — that margin is what makes lint-at-sweep-scale
    // viable.
    bench::header("static backend: analyzer vs. simulator");
    std::size_t static_decided = 0, static_undecided = 0;
    std::size_t static_passes = 0;
    const auto s0 = std::chrono::steady_clock::now();
    double static_ms = 0.0;
    do {
        static_decided = static_undecided = 0;
        for (const std::size_t u : grid.uniqueIndices) {
            const Scenario &s = grid.expanded[u];
            const verdict::StaticJudgement judged =
                verdict::judgeScenarioStatic(s.variant, s.config,
                                             s.options);
            ++(judged.judgement.decided() ? static_decided
                                          : static_undecided);
        }
        ++static_passes;
        static_ms = millisSince(s0);
    } while (static_ms < 200.0);
    const double static_cells = static_cast<double>(
        static_passes * grid.uniqueIndices.size());
    const double static_rate =
        static_ms > 0.0 ? 1000.0 * static_cells / static_ms : 0.0;
    const double static_speedup =
        sim_rate > 0.0 ? static_rate / sim_rate : 0.0;
    std::printf("%-10s %8zu %14.1f\n", "static",
                grid.uniqueIndices.size(), static_rate);
    std::printf("static vs. simulator: %.1fx "
                "(%zu decided, %zu undecided)\n",
                static_speedup, static_decided, static_undecided);

    // Triage: how much of the grid still needs the simulator once
    // the model has judged it, and whether the export stays
    // byte-identical to the simulator backend's.
    bench::header("triage backend: simulate fraction");
    CampaignEngine::Options triage_opts;
    triage_opts.workers = 1;
    triage_opts.backend = verdict::VerdictBackend::Triage;
    const CampaignReport triage =
        CampaignEngine(triage_opts).run(spec);
    const double simulate_fraction =
        triage.uniqueCount
            ? static_cast<double>(triage.executedCount) /
                  static_cast<double>(triage.uniqueCount)
            : 1.0;
    const bool identical = triage.successMatrixText() ==
                           sim.successMatrixText();
    std::printf("simulated %zu of %zu unique cells (%.0f%%), "
                "%zu replicated from model-equivalent runs\n",
                triage.executedCount, triage.uniqueCount,
                100.0 * simulate_fraction, triage.replicatedCells);
    std::printf("success matrices identical: %s\n",
                identical ? "yes" : "NO — BUG");
    if (!identical)
        return 1;

    bench::BenchJson out;
    out.set("bench", std::string("verdict"));
    out.set("grid_unique",
            static_cast<double>(grid.uniqueIndices.size()));
    out.set("sim_cells_per_sec", sim_rate);
    out.set("model_cells_per_sec", model_rate);
    out.set("model_vs_sim_speedup", speedup);
    out.set("model_decided", static_cast<double>(decided));
    out.set("model_undecided", static_cast<double>(undecided));
    out.set("static_cells_per_sec", static_rate);
    out.set("static_vs_sim_speedup", static_speedup);
    out.set("static_decided", static_cast<double>(static_decided));
    out.set("static_undecided",
            static_cast<double>(static_undecided));
    out.set("triage_simulate_fraction", simulate_fraction);
    out.set("triage_replicated_cells",
            static_cast<double>(triage.replicatedCells));
    if (!out.save(json_path))
        return 1;
    return 0;
}
