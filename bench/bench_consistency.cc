/**
 * @file
 * The repository's headline experiment: model-vs-simulator
 * agreement.  For all 19 variants x {baseline, strategies 1-3, and
 * strategy 4 where applicable}, the attack-graph verdict must match
 * the executable outcome.
 */

#include "attacks/runner.hh"
#include "bench_util.hh"
#include "core/security_dependency.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::core;
using attacks::AttackResult;
using uarch::CpuConfig;

int
main()
{
    bench::header("model vs simulator agreement matrix");
    std::printf("%-26s | %-11s | %-11s | %-11s | %-11s\n", "variant",
                "baseline", "strategy 1", "strategy 2",
                "strategy 3");
    bench::rule();

    int cells = 0, agreements = 0;
    const auto cell = [&](bool model_vuln, bool sim_leak) {
        ++cells;
        const bool agree = model_vuln == sim_leak;
        if (agree)
            ++agreements;
        return agree ? (sim_leak ? "leak/leak" : "safe/safe")
                     : "DISAGREE";
    };

    for (AttackVariant v : allVariants()) {
        const bool timing_only = v == AttackVariant::Spoiler;

        const AttackGraph base = buildAttackGraph(v);
        const AttackResult r0 =
            attacks::runVariant(v, CpuConfig{});
        const char *c0 = cell(base.isVulnerable(), r0.leaked);

        const char *c1 = "n/a";
        const char *c2 = "n/a";
        const char *c3 = "n/a";
        if (!timing_only) {
            AttackGraph g1 = base;
            applyDefense(g1, DefenseStrategy::PreventAccess);
            CpuConfig cfg1;
            cfg1.defense.fenceSpeculativeLoads = true;
            c1 = cell(g1.isVulnerable(),
                      attacks::runVariant(v, cfg1).leaked);

            AttackGraph g2 = base;
            applyDefense(g2, DefenseStrategy::PreventUse);
            CpuConfig cfg2;
            cfg2.defense.blockSpeculativeForwarding = true;
            c2 = cell(g2.isVulnerable(),
                      attacks::runVariant(v, cfg2).leaked);

            AttackGraph g3 = base;
            applyDefense(g3, DefenseStrategy::PreventSend);
            CpuConfig cfg3;
            cfg3.defense.invisibleSpeculation = true;
            c3 = cell(g3.isVulnerable(),
                      attacks::runVariant(v, cfg3).leaked);
        }
        std::printf("%-26.26s | %-11s | %-11s | %-11s | %-11s\n",
                    variantInfo(v).name, c0, c1, c2, c3);
    }
    bench::rule();
    std::printf("agreement: %d/%d cells (model verdict == simulator "
                "outcome)\n",
                agreements, cells);
    return agreements == cells ? 0 : 1;
}
