/**
 * @file
 * Reproduction of Table II: industrial defenses against speculative
 * attacks, with each mechanism classified under a paper strategy
 * and *executed*: the attack runs undefended (leaks) and defended
 * (blocked).
 */

#include "attacks/runner.hh"
#include "bench_util.hh"
#include "defense/mitigations.hh"

using namespace specsec;
using namespace specsec::attacks;
using core::AttackVariant;
using core::DefenseMechanism;

namespace
{

struct Row
{
    DefenseMechanism mechanism;
    AttackVariant variant;
};

const Row kRows[] = {
    // Spectre / serialization.
    {DefenseMechanism::LFence, AttackVariant::SpectreV1},
    {DefenseMechanism::MFence, AttackVariant::SpectreV1},
    // Meltdown / kernel isolation.
    {DefenseMechanism::Kaiser, AttackVariant::Meltdown},
    {DefenseMechanism::Kpti, AttackVariant::Meltdown},
    // Prevent mis-training.
    {DefenseMechanism::DisableBranchPrediction,
     AttackVariant::SpectreV1},
    {DefenseMechanism::Ibrs, AttackVariant::SpectreV2},
    {DefenseMechanism::Stibp, AttackVariant::SpectreV2},
    {DefenseMechanism::Ibpb, AttackVariant::SpectreV2},
    {DefenseMechanism::InvalidatePredictorOnContextSwitch,
     AttackVariant::SpectreV2},
    {DefenseMechanism::Retpoline, AttackVariant::SpectreV2},
    // Address masking.
    {DefenseMechanism::CoarseAddressMasking,
     AttackVariant::SpectreV1},
    {DefenseMechanism::DataDependentAddressMasking,
     AttackVariant::SpectreV1_1},
    // Serialize stores and loads.
    {DefenseMechanism::Ssbb, AttackVariant::SpectreV4},
    {DefenseMechanism::Ssbs, AttackVariant::SpectreV4},
    // Prevent RSB underfill.
    {DefenseMechanism::RsbStuffing, AttackVariant::SpectreRsb},
};

} // namespace

int
main()
{
    bench::header("Table II: industrial defenses, classified and "
                  "executed");
    std::printf("%-44s %-10s %-16s %6s %9s\n", "Defense", "Strategy",
                "Attack", "bare", "defended");
    bench::rule();
    for (const Row &row : kRows) {
        const core::DefenseInfo &dinfo =
            core::defenseInfo(row.mechanism);
        const core::VariantInfo &vinfo =
            core::variantInfo(row.variant);
        const AttackResult bare =
            runVariant(row.variant, CpuConfig{});
        CpuConfig cfg;
        AttackOptions opt;
        defense::applyMitigation(row.mechanism, cfg, opt);
        const AttackResult defended =
            runVariant(row.variant, cfg, opt);
        std::printf("%-44.44s %-10.10s %-16.16s %5.0f%% %8.0f%%\n",
                    dinfo.name,
                    core::defenseStrategyName(dinfo.strategy),
                    vinfo.name, bare.accuracy * 100.0,
                    defended.accuracy * 100.0);
    }
    bench::rule();
    std::printf("(academia defenses, Section V-B, same harness)\n");
    const Row academia[] = {
        {DefenseMechanism::ContextSensitiveFencing,
         AttackVariant::SpectreV1},
        {DefenseMechanism::Sabc, AttackVariant::SpectreV1},
        {DefenseMechanism::SpectreGuard, AttackVariant::SpectreV1},
        {DefenseMechanism::Nda, AttackVariant::Meltdown},
        {DefenseMechanism::ConTExT, AttackVariant::ZombieLoad},
        {DefenseMechanism::SpecShield, AttackVariant::LazyFp},
        {DefenseMechanism::Stt, AttackVariant::SpectreV1},
        {DefenseMechanism::Dawg, AttackVariant::SpectreV2},
        {DefenseMechanism::InvisiSpec, AttackVariant::SpectreV1},
        {DefenseMechanism::SafeSpec, AttackVariant::Meltdown},
        {DefenseMechanism::ConditionalSpeculation,
         AttackVariant::SpectreV1},
        {DefenseMechanism::EfficientInvisibleSpeculation,
         AttackVariant::Meltdown},
        {DefenseMechanism::CleanupSpec, AttackVariant::Foreshadow},
    };
    for (const Row &row : academia) {
        const core::DefenseInfo &dinfo =
            core::defenseInfo(row.mechanism);
        const core::VariantInfo &vinfo =
            core::variantInfo(row.variant);
        const AttackResult bare =
            runVariant(row.variant, CpuConfig{});
        CpuConfig cfg;
        AttackOptions opt;
        defense::applyMitigation(row.mechanism, cfg, opt);
        const AttackResult defended =
            runVariant(row.variant, cfg, opt);
        std::printf("%-44.44s %-10.10s %-16.16s %5.0f%% %8.0f%%\n",
                    dinfo.name,
                    core::defenseStrategyName(dinfo.strategy),
                    vinfo.name, bare.accuracy * 100.0,
                    defended.accuracy * 100.0);
    }
    return 0;
}
