/**
 * @file
 * Reproduction of Table II: industrial defenses against speculative
 * attacks, with each mechanism classified under a paper strategy
 * and *executed*: the attack runs undefended (leaks) and defended
 * (blocked).
 *
 * The execution path is the campaign engine over the same named
 * specs the golden regression gate pins (src/regress/specs.hh), so
 * the numbers printed here are exactly the numbers CI checks.
 */

#include <cstdlib>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "core/defense_catalog.hh"
#include "regress/specs.hh"

using namespace specsec;
using namespace specsec::campaign;
using core::AttackVariant;
using core::DefenseMechanism;

namespace
{

/** The Table II pairing: which attack each mechanism is shown
 *  against.  Execution comes from the campaign report. */
struct Row
{
    DefenseMechanism mechanism;
    AttackVariant variant;
};

const Row kIndustryRows[] = {
    // Spectre / serialization.
    {DefenseMechanism::LFence, AttackVariant::SpectreV1},
    {DefenseMechanism::MFence, AttackVariant::SpectreV1},
    // Meltdown / kernel isolation.
    {DefenseMechanism::Kaiser, AttackVariant::Meltdown},
    {DefenseMechanism::Kpti, AttackVariant::Meltdown},
    // Prevent mis-training.
    {DefenseMechanism::DisableBranchPrediction,
     AttackVariant::SpectreV1},
    {DefenseMechanism::Ibrs, AttackVariant::SpectreV2},
    {DefenseMechanism::Stibp, AttackVariant::SpectreV2},
    {DefenseMechanism::Ibpb, AttackVariant::SpectreV2},
    {DefenseMechanism::InvalidatePredictorOnContextSwitch,
     AttackVariant::SpectreV2},
    {DefenseMechanism::Retpoline, AttackVariant::SpectreV2},
    // Address masking.
    {DefenseMechanism::CoarseAddressMasking,
     AttackVariant::SpectreV1},
    {DefenseMechanism::DataDependentAddressMasking,
     AttackVariant::SpectreV1_1},
    // Serialize stores and loads.
    {DefenseMechanism::Ssbb, AttackVariant::SpectreV4},
    {DefenseMechanism::Ssbs, AttackVariant::SpectreV4},
    // Prevent RSB underfill.
    {DefenseMechanism::RsbStuffing, AttackVariant::SpectreRsb},
};

const Row kAcademiaRows[] = {
    {DefenseMechanism::ContextSensitiveFencing,
     AttackVariant::SpectreV1},
    {DefenseMechanism::Sabc, AttackVariant::SpectreV1},
    {DefenseMechanism::SpectreGuard, AttackVariant::SpectreV1},
    {DefenseMechanism::Nda, AttackVariant::Meltdown},
    {DefenseMechanism::ConTExT, AttackVariant::ZombieLoad},
    {DefenseMechanism::SpecShield, AttackVariant::LazyFp},
    {DefenseMechanism::Stt, AttackVariant::SpectreV1},
    {DefenseMechanism::Dawg, AttackVariant::SpectreV2},
    {DefenseMechanism::InvisiSpec, AttackVariant::SpectreV1},
    {DefenseMechanism::SafeSpec, AttackVariant::Meltdown},
    {DefenseMechanism::ConditionalSpeculation,
     AttackVariant::SpectreV1},
    {DefenseMechanism::EfficientInvisibleSpeculation,
     AttackVariant::Meltdown},
    {DefenseMechanism::CleanupSpec, AttackVariant::Foreshadow},
};

/**
 * Accuracy of the (variant, defense-label) cell of @p report.
 * Aborts when the cell is absent: the Row tables below must pair
 * only variants/mechanisms present in the campaign spec.
 */
double
cellAccuracy(const CampaignReport &report, AttackVariant variant,
             const std::string &colLabel)
{
    const std::string rowLabel = core::variantInfo(variant).name;
    for (const ScenarioOutcome &o : report.outcomes)
        if (o.rowLabel == rowLabel && o.colLabel == colLabel)
            return o.result.accuracy;
    std::fprintf(stderr,
                 "bench_table2: cell (%s x %s) missing from "
                 "campaign '%s' -- Row table out of sync with "
                 "regress spec\n",
                 rowLabel.c_str(), colLabel.c_str(),
                 report.name.c_str());
    std::exit(1);
}

template <std::size_t N>
void
printRows(const CampaignReport &report, const Row (&rows)[N])
{
    for (const Row &row : rows) {
        const core::DefenseInfo &dinfo =
            core::defenseInfo(row.mechanism);
        const core::VariantInfo &vinfo =
            core::variantInfo(row.variant);
        const double bare =
            cellAccuracy(report, row.variant, "baseline");
        const double defended =
            cellAccuracy(report, row.variant, dinfo.name);
        std::printf("%-44.44s %-10.10s %-16.16s %5.0f%% %8.0f%%\n",
                    dinfo.name,
                    core::defenseStrategyName(dinfo.strategy),
                    vinfo.name, bare * 100.0, defended * 100.0);
    }
}

} // namespace

int
main()
{
    bench::header("Table II: industrial defenses, classified and "
                  "executed");
    std::printf("%-44s %-10s %-16s %6s %9s\n", "Defense", "Strategy",
                "Attack", "bare", "defended");
    bench::rule();

    campaign::ResultCache cache;
    CampaignEngine::Options opts;
    opts.cache = &cache;
    const CampaignEngine engine(opts);

    const CampaignReport industry =
        engine.run(regress::table2IndustrySpec());
    printRows(industry, kIndustryRows);
    bench::rule();
    std::printf("(academia defenses, Section V-B, same harness)\n");
    const CampaignReport academia =
        engine.run(regress::table2AcademiaSpec());
    printRows(academia, kAcademiaRows);

    bench::rule();
    std::printf("full industry matrix (%zu cells, %zu executed, "
                "%zu cached):\n\n%s",
                industry.expandedCount, industry.executedCount,
                industry.cacheHits,
                industry.successMatrixText().c_str());
    std::printf("\nfull academia matrix (%zu cells, %zu executed, "
                "%zu cached):\n\n%s",
                academia.expandedCount, academia.executedCount,
                academia.cacheHits,
                academia.successMatrixText().c_str());
    return 0;
}
