/**
 * @file
 * Reproduction of Fig. 2: the example TSG — its valid orderings
 * (including the paper's S, S' and the invalid S''), all race
 * pairs, and a full Theorem 1 cross-check by enumeration.
 */

#include "bench_util.hh"
#include "graph/race.hh"
#include "graph/topo.hh"

using namespace specsec;
using namespace specsec::graph;

int
main()
{
    Tsg g;
    for (const char *name : {"A", "B", "C", "D", "E", "F", "G"})
        g.addNode(name);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    g.addEdge(2, 4);
    g.addEdge(3, 5);
    g.addEdge(4, 5);
    g.addEdge(5, 6);

    bench::header("Fig. 2: example topological sort graph");
    const auto print_order = [&](const char *name,
                                 const std::vector<NodeId> &order) {
        std::printf("%s = [", name);
        for (std::size_t i = 0; i < order.size(); ++i)
            std::printf("%s%s", i ? "," : "",
                        g.label(order[i]).c_str());
        std::printf("]  valid=%s\n",
                    isValidOrdering(g, order) ? "yes" : "no");
    };
    print_order("S  ", {0, 1, 2, 3, 4, 5, 6});
    print_order("S' ", {0, 2, 4, 1, 3, 5, 6});
    print_order("S''", {0, 1, 3, 4, 2, 5, 6});

    std::printf("\ntotal valid orderings: %llu\n",
                static_cast<unsigned long long>(
                    countValidOrderings(g)));

    std::printf("\nrace pairs (Theorem 1, path-based):\n");
    for (const auto &[u, v] : racePairs(g)) {
        std::printf("  %s <-> %s\n", g.label(u).c_str(),
                    g.label(v).c_str());
        const auto witness = raceWitness(g, u, v);
        print_order("    witness 1", witness->uFirst);
        print_order("    witness 2", witness->vFirst);
    }

    std::printf("\nTheorem 1 cross-check (enumeration vs path):\n");
    bool all_agree = true;
    for (NodeId u = 0; u < g.nodeCount(); ++u) {
        for (NodeId v = u + 1; v < g.nodeCount(); ++v) {
            const bool def = raceByEnumeration(g, u, v);
            const bool thm = hasRace(g, u, v);
            if (def != thm)
                all_agree = false;
            std::printf("  (%s,%s): enumeration=%d path=%d %s\n",
                        g.label(u).c_str(), g.label(v).c_str(), def,
                        thm, def == thm ? "agree" : "DISAGREE");
        }
    }
    std::printf("Theorem 1 verified on all %zu pairs: %s\n",
                g.nodeCount() * (g.nodeCount() - 1) / 2,
                all_agree ? "yes" : "NO");
    return 0;
}
