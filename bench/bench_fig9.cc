/**
 * @file
 * Reproduction of Fig. 9: the attack-graph construction tool flow,
 * run over a corpus of programs (vulnerable and safe, both attack
 * classes).  Reports detection precision/recall and the automatic
 * patch-and-verify loop.
 */

#include <chrono>

#include "attacks/attack_kit.hh"
#include "bench_util.hh"
#include "tool/patcher.hh"

using namespace specsec;
using namespace specsec::tool;
using namespace specsec::uarch;
using attacks::Layout;

namespace
{

struct Case
{
    const char *name;
    bool expectVulnerable;
    AnalysisSpec spec;
};

AnalysisSpec
boundsSpec(bool fence, bool mask)
{
    Program p;
    p.emit(load64(5, 2, 0));
    auto bail = p.newLabel();
    p.emitBranch(Cond::Geu, 1, 5, bail);
    if (fence)
        p.emit(lfence());
    if (mask)
        p.emit(andImm(1, 1, 0xf));
    p.emit(add(7, 3, 1));
    p.emit(load8(6, 7, 0));
    p.emit(shlImm(8, 6, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.bind(bail);
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.ranges = {{Layout::kUserSecret, kPageSize, "secret"}};
    spec.attackerRegs = {1};
    spec.knownRegs = {{2, Layout::kVictimBound},
                      {3, Layout::kVictimArray},
                      {4, Layout::kProbeArray}};
    return spec;
}

AnalysisSpec
meltdownSpec()
{
    Program p;
    p.emit(load8(6, 3, 0));
    p.emit(shlImm(8, 6, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.ranges = {{Layout::kKernelData, kPageSize, "kernel"}};
    spec.knownRegs = {{3, Layout::kKernelData},
                      {4, Layout::kProbeArray}};
    return spec;
}

AnalysisSpec
rdmsrSpec()
{
    Program p;
    p.emit(rdmsr(6, 5));
    p.emit(shlImm(8, 6, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.knownRegs = {{4, Layout::kProbeArray}};
    return spec;
}

AnalysisSpec
storeBypassSpec()
{
    Program p;
    p.emit(store64(1, 0, 2));
    p.emit(load64(3, 1, 0));
    p.emit(shlImm(8, 3, 12));
    p.emit(add(9, 4, 8));
    p.emit(load8(10, 9, 0));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.knownRegs = {{4, Layout::kProbeArray}};
    return spec;
}

AnalysisSpec
benignSpec()
{
    Program p;
    p.emit(movImm(1, 5));
    p.emit(addImm(2, 1, 3));
    p.emit(store64(3, 0, 2));
    p.emit(halt());
    AnalysisSpec spec;
    spec.program = p;
    spec.knownRegs = {{3, Layout::kScratch}};
    return spec;
}

} // namespace

int
main()
{
    const Case corpus[] = {
        {"Spectre v1 (Listing 1 shape)", true, boundsSpec(false, false)},
        {"Listing 1 + LFENCE", false, boundsSpec(true, false)},
        {"Listing 1 + address masking", false, boundsSpec(false, true)},
        {"Meltdown (Listing 2 shape)", true, meltdownSpec()},
        {"RDMSR gadget (v3a shape)", true, rdmsrSpec()},
        {"store-bypass gadget (v4 shape)", true, storeBypassSpec()},
        {"benign straight-line code", false, benignSpec()},
    };

    bench::header("Fig. 9: tool flow over the program corpus");
    std::printf("%-34s %-9s %-9s %-8s %-7s %-8s %-8s\n", "program",
                "expected", "verdict", "findings", "fences",
                "patched", "residual");
    bench::rule();
    int true_pos = 0, false_pos = 0, true_neg = 0, false_neg = 0;
    for (const Case &c : corpus) {
        const AnalysisResult r = analyzeSpec(c.spec);
        const PatchResult patch = autoPatch(c.spec);
        std::printf("%-34s %-9s %-9s %8zu %7zu %-8s %8zu\n", c.name,
                    c.expectVulnerable ? "VULN" : "safe",
                    r.vulnerable ? "VULN" : "safe",
                    r.findings.size(), patch.fencesInserted,
                    patch.verified ? "yes" : "NO",
                    patch.residualRaces);
        if (c.expectVulnerable && r.vulnerable)
            ++true_pos;
        else if (c.expectVulnerable && !r.vulnerable)
            ++false_neg;
        else if (!c.expectVulnerable && r.vulnerable)
            ++false_pos;
        else
            ++true_neg;
    }
    bench::rule();
    std::printf("detection: %d true positives, %d true negatives, "
                "%d false positives, %d false negatives\n",
                true_pos, true_neg, false_pos, false_neg);
    std::printf("residual races are intra-instruction authorization/"
                "access races (Meltdown-type):\nsoftware fences cut "
                "the exfiltration chain (relaxed strategy 3) but "
                "only hardware\ndefenses or isolation (KPTI) remove "
                "the access race itself.\n");

    // Throughput of the full analyze+patch pipeline.
    const auto spec = boundsSpec(false, false);
    const auto start = std::chrono::steady_clock::now();
    constexpr int kIterations = 2000;
    std::size_t sink = 0;
    for (int i = 0; i < kIterations; ++i)
        sink += autoPatch(spec).fencesInserted;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("\npipeline throughput: %.1f analyze+patch runs/ms "
                "(%d iterations, checksum %zu)\n",
                kIterations * 1000.0 /
                    static_cast<double>(elapsed),
                kIterations, sink);
    return 0;
}
