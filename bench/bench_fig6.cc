/**
 * @file
 * Reproduction of Fig. 6: the memory-disambiguation-triggered
 * attack (Spectre v4), whose authorization is the store-load
 * address dependency resolution.
 */

#include "bench_util.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::core;

int
main()
{
    const AttackGraph g = buildAttackGraph(AttackVariant::SpectreV4);
    bench::header("Fig. 6: TSG model of the memory disambiguation "
                  "triggered attack (Spectre v4)");
    bench::describeGraph(g);
    return 0;
}
