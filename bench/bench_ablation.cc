/**
 * @file
 * Ablation study: the race condition as a knob.
 *
 * The paper's root cause is a *race* between delayed authorization
 * and transient access.  This bench sweeps the timing parameters
 * that decide the race and shows leak accuracy switching between
 * 0% and 100% exactly where the model predicts.  Every sweep runs
 * through the campaign engine on the same named specs the golden
 * regression gate pins (src/regress/specs.hh), sharing one result
 * cache across all four ablations.
 */

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "regress/specs.hh"

using namespace specsec;
using namespace specsec::campaign;

namespace
{

/** Print one "value, accuracy, leaked" line per sweep column. */
void
printSweep(const CampaignReport &report)
{
    for (const ScenarioOutcome &o : report.outcomes)
        std::printf("%-28s %9.1f%% %8s\n", o.colLabel.c_str(),
                    o.result.accuracy * 100.0,
                    o.result.leaked ? "yes" : "no");
}

} // namespace

int
main()
{
    ResultCache cache;
    CampaignEngine::Options opts;
    opts.cache = &cache;
    const CampaignEngine engine(opts);

    bench::header("ablation 1: Spectre v1 leak vs speculation "
                  "window (bound-fetch latency)");
    std::printf("%-28s %10s %8s\n", "cache miss latency (cycles)",
                "accuracy", "leaked");
    bench::rule();
    printSweep(engine.run(regress::ablationSpectreWindowSpec()));
    std::printf("-> below the transient chain's ~dozen cycles the "
                "branch resolves first and the attack dies:\n"
                "   no delayed authorization, no race, no leak "
                "(Section III step 2).\n");

    bench::header("ablation 2: Meltdown leak vs exception delivery "
                  "window");
    std::printf("%-28s %10s %8s\n", "delivery latency (cycles)",
                "accuracy", "leaked");
    bench::rule();
    printSweep(engine.run(regress::ablationMeltdownDeliverySpec()));
    std::printf("-> the kernel word arrives from memory (slow), so "
                "the squash races the send;\n"
                "   tightening exception delivery closes the "
                "window.\n");

    bench::header("ablation 3: Foreshadow leak vs authorization "
                  "(permission check) latency");
    std::printf("%-28s %10s %8s\n", "perm check latency (cycles)",
                "accuracy", "leaked");
    bench::rule();
    printSweep(engine.run(regress::ablationForeshadowAuthSpec()));
    std::printf("-> with an immediate squash the speculative window "
                "IS the authorization latency:\n"
                "   the L1-hit chain needs ~a dozen cycles, so slow "
                "permission checks leak and\n"
                "   fast ones do not -- the race, quantified.\n");

    bench::header("ablation 4: speculative-fill statistics per "
                  "attack (the micro-architectural footprint)");
    std::printf("%-28s %18s %18s\n", "attack", "transient fwds",
                "spec fills");
    bench::rule();
    ScenarioSpec footprint;
    footprint.name = "ablation-footprint";
    footprint.variants = {core::AttackVariant::SpectreV1,
                          core::AttackVariant::Meltdown,
                          core::AttackVariant::Foreshadow,
                          core::AttackVariant::Ridl};
    for (const ScenarioOutcome &o : engine.run(footprint).outcomes)
        std::printf("%-28s %18llu %18llu\n", o.rowLabel.c_str(),
                    static_cast<unsigned long long>(
                        o.result.transientForwards),
                    static_cast<unsigned long long>(
                        o.stats.speculativeFills));
    return 0;
}
