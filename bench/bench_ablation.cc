/**
 * @file
 * Ablation study: the race condition as a knob.
 *
 * The paper's root cause is a *race* between delayed authorization
 * and transient access.  This bench sweeps the timing parameters
 * that decide the race and shows leak accuracy switching between
 * 0% and 100% exactly where the model predicts:
 *
 *  - the speculation-window length for Spectre v1 (how long the
 *    bounds check is delayed = the bound's miss latency),
 *  - the exception-delivery window for Meltdown (cold vs warm
 *    kernel data: the data track must win the race),
 *  - the authorization latency for Foreshadow (how long the
 *    terminal fault takes to resolve).
 */

#include "attacks/runner.hh"
#include "bench_util.hh"

using namespace specsec;
using namespace specsec::attacks;

int
main()
{
    bench::header("ablation 1: Spectre v1 leak vs speculation "
                  "window (bound-fetch latency)");
    std::printf("%-28s %10s %8s\n", "cache miss latency (cycles)",
                "accuracy", "leaked");
    bench::rule();
    for (std::uint32_t miss :
         {6u, 8u, 10u, 12u, 16u, 24u, 40u, 80u, 200u}) {
        CpuConfig cfg;
        cfg.cache.missLatency = miss;
        const AttackResult r = runSpectreV1(cfg);
        std::printf("%-28u %9.1f%% %8s\n", miss, r.accuracy * 100.0,
                    r.leaked ? "yes" : "no");
    }
    std::printf("-> below the transient chain's ~dozen cycles the "
                "branch resolves first and the attack dies:\n"
                "   no delayed authorization, no race, no leak "
                "(Section III step 2).\n");

    bench::header("ablation 2: Meltdown leak vs exception delivery "
                  "window");
    std::printf("%-28s %10s %8s\n", "delivery latency (cycles)",
                "accuracy", "leaked");
    bench::rule();
    for (unsigned delivery : {0u, 2u, 4u, 8u, 12u, 16u, 32u}) {
        CpuConfig cfg;
        cfg.exceptionDeliveryLatency = delivery;
        const AttackResult r = runMeltdown(cfg);
        std::printf("%-28u %9.1f%% %8s\n", delivery,
                    r.accuracy * 100.0, r.leaked ? "yes" : "no");
    }
    std::printf("-> the kernel word arrives from memory (slow), so "
                "the squash races the send;\n"
                "   tightening exception delivery closes the "
                "window.\n");

    bench::header("ablation 3: Foreshadow leak vs authorization "
                  "(permission check) latency");
    std::printf("%-28s %10s %8s\n", "perm check latency (cycles)",
                "accuracy", "leaked");
    bench::rule();
    for (unsigned perm : {1u, 2u, 4u, 8u, 16u, 30u, 60u}) {
        CpuConfig cfg;
        cfg.permCheckLatency = perm;
        cfg.exceptionDeliveryLatency = 0; // immediate squash: the
                                          // window is the check
        const AttackResult r = runForeshadow(cfg);
        std::printf("%-28u %9.1f%% %8s\n", perm, r.accuracy * 100.0,
                    r.leaked ? "yes" : "no");
    }
    std::printf("-> with an immediate squash the speculative window "
                "IS the authorization latency:\n"
                "   the L1-hit chain needs ~a dozen cycles, so slow "
                "permission checks leak and\n"
                "   fast ones do not -- the race, quantified.\n");

    bench::header("ablation 4: speculative-fill statistics per "
                  "attack (the micro-architectural footprint)");
    std::printf("%-28s %18s %18s\n", "attack", "transient fwds",
                "spec fills");
    bench::rule();
    for (core::AttackVariant v :
         {core::AttackVariant::SpectreV1, core::AttackVariant::Meltdown,
          core::AttackVariant::Foreshadow, core::AttackVariant::Ridl}) {
        const AttackResult r = runVariant(v, CpuConfig{});
        std::printf("%-28s %18llu %18s\n",
                    core::variantInfo(v).name,
                    static_cast<unsigned long long>(
                        r.transientForwards),
                    "(see CpuStats)");
    }
    return 0;
}
