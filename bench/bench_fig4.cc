/**
 * @file
 * Reproduction of Fig. 4: the combined Meltdown/Foreshadow/MDS
 * attack graph with five alternative secret sources, and the
 * defense-placement study of Section V-B: dependency (1) on the
 * memory read alone is insufficient (the cache-hit variant
 * escapes); covering every source works; a single "prevent use"
 * dependency is both sufficient and cheaper.  Each model verdict is
 * cross-checked on the simulator.
 */

#include "attacks/runner.hh"
#include "bench_util.hh"
#include "core/security_dependency.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::core;

int
main()
{
    bench::header("Fig. 4: Meltdown / Foreshadow / MDS multi-source "
                  "attack graph");
    const AttackGraph base = buildFigure4Graph();
    bench::describeGraph(base);

    bench::header("defense placement study (Section V-B)");
    std::printf("%-56s %-12s %6s\n", "placement", "model",
                "edges");
    bench::rule();

    {
        AttackGraph g = base;
        const auto auth = g.authorizationNodes().front();
        applyTargetedDependency(
            g, auth, *g.tsg().findByLabel("Read S from memory"));
        std::printf("%-56s %-12s %6d\n",
                    "(1) auth -> read-from-memory only",
                    g.isVulnerable() ? "VULNERABLE" : "blocked", 1);
    }
    {
        AttackGraph g = base;
        const auto auth = g.authorizationNodes().front();
        applyTargetedDependency(
            g, auth, *g.tsg().findByLabel("Read S from memory"));
        applyTargetedDependency(
            g, auth, *g.tsg().findByLabel("Read S from cache"));
        std::printf("%-56s %-12s %6d\n",
                    "(1)+(5) memory and cache reads",
                    g.isVulnerable() ? "VULNERABLE" : "blocked", 2);
    }
    {
        AttackGraph g = base;
        const auto auth = g.authorizationNodes().front();
        int edges = 0;
        for (auto access : g.secretAccessNodes()) {
            applyTargetedDependency(g, auth, access);
            ++edges;
        }
        std::printf("%-56s %-12s %6d\n",
                    "(1) on every source (memory/cache/port/LFB/SB)",
                    g.isVulnerable() ? "VULNERABLE" : "blocked",
                    edges);
    }
    {
        AttackGraph g = base;
        const auto added = applyDefense(g, DefenseStrategy::PreventUse);
        std::printf("%-56s %-12s %6zu\n",
                    "(2) prevent use before authorization",
                    g.isVulnerable() ? "VULNERABLE" : "blocked",
                    added.size());
    }
    {
        AttackGraph g = base;
        const auto added =
            applyDefense(g, DefenseStrategy::PreventSend);
        std::printf("%-56s %-12s %6zu\n",
                    "(3) prevent send before authorization",
                    g.isVulnerable() ? "VULNERABLE" : "blocked",
                    added.size());
    }

    bench::header("simulator cross-check: fixing only the memory "
                  "path leaves the cache path leaking");
    uarch::CpuConfig fixed_memory_only;
    fixed_memory_only.vuln.meltdown = false;
    const auto meltdown =
        attacks::runMeltdown(fixed_memory_only);
    const auto foreshadow =
        attacks::runForeshadow(fixed_memory_only);
    std::printf("  Meltdown  (memory source): accuracy %5.1f%% %s\n",
                meltdown.accuracy * 100,
                meltdown.leaked ? "LEAKS" : "blocked");
    std::printf("  Foreshadow (cache source): accuracy %5.1f%% %s\n",
                foreshadow.accuracy * 100,
                foreshadow.leaked ? "LEAKS" : "blocked");
    std::printf("  -> partial dependency gives a false sense of "
                "security, as the paper argues.\n");
    return 0;
}
