/**
 * @file
 * Reproduction of Fig. 5: the special-register attacks (Meltdown
 * v3a / RDMSR and LazyFP), whose illegal access reads registers
 * rather than the cache-memory system.
 */

#include "bench_util.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::core;

int
main()
{
    for (AttackVariant v :
         {AttackVariant::MeltdownV3a, AttackVariant::LazyFp}) {
        const AttackGraph g = buildAttackGraph(v);
        bench::header("Fig. 5: " + std::string(variantInfo(v).name));
        bench::describeGraph(g);
    }
    return 0;
}
