/**
 * @file
 * Sharded execution: wall-clock of a 1-process run of the
 * table3-baseline spec vs. the same grid partitioned with
 * --shard-style ranges, executed shard by shard, serialized through
 * the mergeable report format, and re-joined with
 * CampaignReport::merge — the exact multi-process pipeline
 * specsec_regress --shard/--merge runs, minus the process spawns.
 * Verifies the merged exports are byte-identical to the unsharded
 * run and reports the partition/serialize/merge overhead a CI
 * fan-out pays.  Headline numbers land in BENCH_shard.json for CI
 * artifact upload.
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "regress/specs.hh"
#include "tool/report.hh"
#include "tool/report_io.hh"

using namespace specsec;
using namespace specsec::campaign;

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_shard.json";
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];

    bench::header("sharded campaign: 1 process vs. shard+merge");
    const regress::NamedSpec *named =
        regress::findSpec("table3-baseline");
    if (named == nullptr) {
        std::fprintf(stderr, "table3-baseline spec missing\n");
        return 1;
    }
    const ScenarioSpec &spec = named->spec;
    const CampaignEngine engine;
    std::printf("spec %s: %zu grid points, %u workers\n",
                spec.name.c_str(), spec.gridSize(),
                engine.workers());

    // Warm-up, excluded from every timed region below: one full
    // untimed pass touches every lazily initialized catalog and
    // populates the scenario arena pool (attacks/snapshot.hh), so
    // the timed runs compare sharding strategies at steady state
    // instead of charging the first one for snapshot construction.
    engine.run(spec);

    const auto f0 = std::chrono::steady_clock::now();
    const CampaignReport full = engine.run(spec);
    const double fullMs = millisSince(f0);
    const std::string fullCsv = tool::campaignCsv(full, false);
    const std::string fullJson = tool::campaignJson(full, false);

    bench::rule();
    std::printf("%-16s %8s %12s %12s %8s\n", "mode", "shards",
                "run (ms)", "merge (ms)", "match");
    std::printf("%-16s %8d %12.1f %12s %8s\n", "1-process", 1,
                fullMs, "-", "-");

    bool all_match = true;
    bench::BenchJson out;
    out.set("bench", std::string("shard"));
    out.set("grid_scenarios",
            static_cast<double>(spec.gridSize()));
    out.set("full_wall_ms", fullMs);
    out.set("full_scenarios_per_sec", full.scenariosPerSecond);
    for (const std::size_t n : {2UL, 4UL, 8UL}) {
        // Run every shard (sequentially; CI runs them as parallel
        // jobs) and round-trip each report through the wire format.
        const auto r0 = std::chrono::steady_clock::now();
        std::vector<std::string> wires;
        for (std::size_t i = 0; i < n; ++i)
            wires.push_back(tool::shardReportJson(
                engine.run(spec, ShardRange{i, n})));
        const double runMs = millisSince(r0);

        const auto m0 = std::chrono::steady_clock::now();
        CampaignReport merged;
        bool first = true;
        for (const std::string &wire : wires) {
            auto shard = tool::parseShardReportJson(wire);
            if (!shard) {
                std::fprintf(stderr, "shard report parse failed\n");
                return 1;
            }
            if (first) {
                merged = std::move(*shard);
                first = false;
            } else if (!merged.merge(*shard)) {
                std::fprintf(stderr, "merge conflict\n");
                return 1;
            }
        }
        const double mergeMs = millisSince(m0);

        const bool match =
            tool::campaignCsv(merged, false) == fullCsv &&
            tool::campaignJson(merged, false) == fullJson &&
            merged.successMatrixText() ==
                full.successMatrixText();
        all_match &= match;
        char mode[32];
        std::snprintf(mode, sizeof mode, "shard+merge");
        std::printf("%-16s %8zu %12.1f %12.2f %8s\n", mode, n,
                    runMs, mergeMs, match ? "yes" : "NO");

        char key[32];
        std::snprintf(key, sizeof key, "shard%zu_run_ms", n);
        out.set(key, runMs);
        std::snprintf(key, sizeof key, "shard%zu_merge_ms", n);
        out.set(key, mergeMs);
    }

    std::printf("merged exports byte-identical to 1-process run: "
                "%s\n", all_match ? "yes" : "NO — BUG");
    out.set("merged_byte_identical",
            all_match ? 1.0 : 0.0);
    if (!out.save(json_path))
        return 1;
    return all_match ? 0 : 1;
}
