/**
 * @file
 * Reproduction of Table I: the first 13 speculative attacks and
 * their impacts, with each attack *executed* on the vulnerable
 * baseline CPU and its measured leak accuracy reported.
 */

#include <cinttypes>

#include "attacks/runner.hh"
#include "bench_util.hh"

using namespace specsec;
using namespace specsec::attacks;

int
main()
{
    bench::header("Table I: speculative attacks and their variants "
                  "(executed on the vulnerable baseline)");
    std::printf("%-26s %-16s %-42s %9s %7s\n", "Attack", "CVE",
                "Impact", "accuracy", "leaked");
    bench::rule();
    const CpuConfig vulnerable;
    for (core::AttackVariant v : core::tableIVariants()) {
        const core::VariantInfo &info = core::variantInfo(v);
        const AttackResult r = runVariant(v, vulnerable);
        std::printf("%-26s %-16s %-42.42s %8.1f%% %7s\n", info.name,
                    info.cve, info.impact, r.accuracy * 100.0,
                    r.leaked ? "yes" : "no");
    }
    bench::rule();
    std::printf("(newer variants, Table III rows 14-18)\n");
    for (core::AttackVariant v : core::tableIIIVariants()) {
        const core::VariantInfo &info = core::variantInfo(v);
        if (info.inTableI)
            continue;
        const AttackResult r = runVariant(v, vulnerable);
        std::printf("%-26s %-16s %-42.42s %8.1f%% %7s\n", info.name,
                    info.cve, info.impact, r.accuracy * 100.0,
                    r.leaked ? "yes" : "no");
    }
    return 0;
}
