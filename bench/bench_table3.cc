/**
 * @file
 * Reproduction of Table III: authorization and illegal-access nodes
 * of every speculative attack variant, cross-checked two ways:
 *
 *  - structurally, against the generated attack graphs (the
 *    authorization node exists, carries the table's label, and
 *    races with the access), and
 *  - executably, by running every variant on the undefended core
 *    through the campaign engine (regress::table3BaselineSpec, the
 *    same spec the golden regression gate pins) and printing
 *    whether the modeled race actually leaks.
 */

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "core/variants.hh"
#include "graph/race.hh"
#include "regress/specs.hh"

using namespace specsec;
using namespace specsec::core;

namespace
{

/** "yes"/"no" leak verdict for @p v, "n/a" when not executable. */
const char *
execVerdict(const campaign::CampaignReport &report, AttackVariant v)
{
    const std::string rowLabel = variantInfo(v).name;
    for (std::size_t r = 0; r < report.rowLabels.size(); ++r)
        if (report.rowLabels[r] == rowLabel)
            return report.cellGlyph(r, 0) == 'L' ? "yes" : "no";
    return "n/a";
}

} // namespace

int
main()
{
    const campaign::CampaignReport baseline =
        campaign::CampaignEngine().run(
            regress::table3BaselineSpec());

    bench::header("Table III: authorization and access nodes of "
                  "speculative attacks");
    std::printf("%-26s %-40s %-40s %5s %5s\n", "Attack",
                "Authorization", "Illegal Access", "race", "leak");
    bench::rule();
    for (AttackVariant v : tableIIIVariants()) {
        const VariantInfo &info = variantInfo(v);
        const AttackGraph g = buildAttackGraph(v);
        const auto auth = g.authorizationNodes().front();
        bool races = false;
        for (auto access : g.secretAccessNodes())
            races |= graph::hasRace(g.tsg(), auth, access);
        std::printf("%-26.26s %-40.40s %-40.40s %5s %5s\n",
                    info.name, info.authorization,
                    info.illegalAccess, races ? "yes" : "no",
                    execVerdict(baseline, v));
    }
    bench::rule();
    std::printf("(leak column: the variant executed on the "
                "undefended core via the campaign\n"
                " engine -- %zu scenarios, the same spec the golden "
                "regression gate pins)\n",
                baseline.expandedCount);
    std::printf("\nattack class split (paper insight 6):\n");
    for (AttackVariant v : tableIIIVariants()) {
        const VariantInfo &info = variantInfo(v);
        std::printf("  %-26s %-14s %s\n", info.name,
                    info.klass == AttackClass::SpectreType
                        ? "Spectre-type"
                        : "Meltdown-type",
                    info.intraInstruction
                        ? "intra-instruction modeling"
                        : "inter-instruction modeling");
    }
    return 0;
}
