/**
 * @file
 * Reproduction of Table III: authorization and illegal-access nodes
 * of every speculative attack variant, cross-checked against the
 * generated attack graphs (the authorization node exists, carries
 * the table's label, and races with the access).
 */

#include "bench_util.hh"
#include "core/variants.hh"
#include "graph/race.hh"

using namespace specsec;
using namespace specsec::core;

int
main()
{
    bench::header("Table III: authorization and access nodes of "
                  "speculative attacks");
    std::printf("%-26s %-44s %-44s %5s\n", "Attack", "Authorization",
                "Illegal Access", "race");
    bench::rule();
    for (AttackVariant v : tableIIIVariants()) {
        const VariantInfo &info = variantInfo(v);
        const AttackGraph g = buildAttackGraph(v);
        const auto auth = g.authorizationNodes().front();
        bool races = false;
        for (auto access : g.secretAccessNodes())
            races |= graph::hasRace(g.tsg(), auth, access);
        std::printf("%-26.26s %-44.44s %-44.44s %5s\n", info.name,
                    info.authorization, info.illegalAccess,
                    races ? "yes" : "no");
    }
    bench::rule();
    std::printf("attack class split (paper insight 6):\n");
    for (AttackVariant v : tableIIIVariants()) {
        const VariantInfo &info = variantInfo(v);
        std::printf("  %-26s %-14s %s\n", info.name,
                    info.klass == AttackClass::SpectreType
                        ? "Spectre-type"
                        : "Meltdown-type",
                    info.intraInstruction
                        ? "intra-instruction modeling"
                        : "inter-instruction modeling");
    }
    return 0;
}
