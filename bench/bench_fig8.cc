/**
 * @file
 * Reproduction of Fig. 8: the four defense strategies against
 * Spectre v1/v2, both at the model level (where the security
 * dependency is inserted; does it block?) and on the simulator
 * (leak accuracy + performance overhead of each strategy's hardware
 * realization on the same workload).
 */

#include "attacks/runner.hh"
#include "bench_util.hh"
#include "core/security_dependency.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::core;
using attacks::AttackResult;
using uarch::CpuConfig;

namespace
{

struct StrategyRow
{
    const char *label;
    DefenseStrategy strategy;
    void (*configure)(CpuConfig &);
};

const StrategyRow kRows[] = {
    {"(1) prevent access before authorization",
     DefenseStrategy::PreventAccess,
     [](CpuConfig &c) { c.defense.fenceSpeculativeLoads = true; }},
    {"(2) prevent use before authorization",
     DefenseStrategy::PreventUse,
     [](CpuConfig &c) {
         c.defense.blockSpeculativeForwarding = true;
     }},
    {"(3) prevent send before authorization",
     DefenseStrategy::PreventSend,
     [](CpuConfig &c) { c.defense.invisibleSpeculation = true; }},
    {"(4) clear predictions",
     DefenseStrategy::ClearPredictions,
     [](CpuConfig &c) {
         c.defense.flushPredictorOnContextSwitch = true;
         c.defense.noBranchPrediction = true;
     }},
};

} // namespace

int
main()
{
    for (AttackVariant v :
         {AttackVariant::SpectreV1, AttackVariant::SpectreV2}) {
        bench::header("Fig. 8: defense strategies vs " +
                      std::string(variantInfo(v).name));
        const AttackResult baseline =
            attacks::runVariant(v, CpuConfig{});
        std::printf("%-44s %-10s %-9s %9s %9s\n", "strategy",
                    "model", "sim leak", "cycles", "overhead");
        bench::rule();
        std::printf("%-44s %-10s %8.1f%% %9llu %9s\n",
                    "no defense (baseline)", "vulnerable",
                    baseline.accuracy * 100.0,
                    static_cast<unsigned long long>(
                        baseline.guestCycles),
                    "-");
        for (const StrategyRow &row : kRows) {
            const AttackGraph g = buildAttackGraph(v);
            const bool model_blocked =
                defenseBlocks(g, row.strategy);
            CpuConfig cfg;
            row.configure(cfg);
            const AttackResult r = attacks::runVariant(v, cfg);
            const double overhead =
                baseline.guestCycles == 0
                    ? 0.0
                    : 100.0 *
                          (static_cast<double>(r.guestCycles) /
                               static_cast<double>(
                                   baseline.guestCycles) -
                           1.0);
            std::printf("%-44s %-10s %8.1f%% %9llu %+8.1f%%\n",
                        row.label,
                        model_blocked ? "blocked" : "vulnerable",
                        r.accuracy * 100.0,
                        static_cast<unsigned long long>(
                            r.guestCycles),
                        overhead);
        }
    }
    std::printf("\nNote: cycle counts cover the attack scenario's "
                "guest execution (training + attack runs); the\n"
                "overhead ordering (1) > (3) reflects the paper's "
                "security-performance tradeoff narrative.\n");
    return 0;
}
