/**
 * @file
 * Shared formatting helpers for the experiment reproduction
 * binaries (one per paper table/figure).
 */

#ifndef SPECSEC_BENCH_UTIL_HH
#define SPECSEC_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/attack_graph.hh"
#include "graph/race.hh"
#include "tool/report.hh"

namespace specsec::bench
{

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
rule()
{
    std::printf("%s\n", std::string(78, '-').c_str());
}

/**
 * Flat machine-readable bench results: insertion-ordered key ->
 * number/string pairs saved as one JSON object (BENCH_*.json), so
 * CI can upload throughput/latency trends as artifacts without
 * scraping the human-readable tables.
 */
class BenchJson
{
  public:
    void
    set(const std::string &key, double value)
    {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        fields_.emplace_back(key, buf);
    }

    void
    set(const std::string &key, const std::string &value)
    {
        std::string quoted = "\"";
        quoted += tool::jsonEscape(value);
        quoted += "\"";
        fields_.emplace_back(key, std::move(quoted));
    }

    bool
    save(const std::string &path) const
    {
        std::string text = "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            text += "  \"" + tool::jsonEscape(fields_[i].first) +
                    "\": " + fields_[i].second;
            text += (i + 1 < fields_.size()) ? ",\n" : "\n";
        }
        text += "}\n";
        if (!tool::writeTextFile(path, text)) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::printf("bench results -> %s\n", path.c_str());
        return true;
    }

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Print an attack graph's nodes, edges and race analysis. */
inline void
describeGraph(const core::AttackGraph &g)
{
    std::printf("nodes (%zu):\n", g.tsg().nodeCount());
    for (graph::NodeId u = 0; u < g.tsg().nodeCount(); ++u) {
        std::printf("  [%2u] %-52s %s\n", u,
                    g.tsg().label(u).c_str(),
                    core::nodeRoleName(g.role(u)));
    }
    std::printf("edges (%zu):\n", g.tsg().edgeCount());
    for (const graph::Edge &e : g.tsg().edges()) {
        std::printf("  %2u -> %-2u  %s\n", e.from, e.to,
                    graph::edgeKindName(e.kind));
    }
    const auto findings = g.missingSecurityDependencies();
    std::printf("missing security dependencies (%zu):\n",
                findings.size());
    for (const core::RaceFinding &f : findings) {
        std::printf("  authorization [%u] races with %s [%u]\n",
                    f.authorization,
                    core::nodeRoleName(f.operationRole),
                    f.operation);
    }
    const auto window = g.speculativeWindow();
    std::printf("speculative window: {");
    for (std::size_t i = 0; i < window.size(); ++i)
        std::printf("%s%u", i ? ", " : "", window[i]);
    std::printf("}\n");
    std::printf("model verdict: %s\n",
                g.isVulnerable() ? "VULNERABLE" : "blocked");
}

} // namespace specsec::bench

#endif // SPECSEC_BENCH_UTIL_HH
