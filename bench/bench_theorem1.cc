/**
 * @file
 * Theorem 1 at scale (google-benchmark): transitive-closure
 * construction, full race-pair detection and single-pair queries on
 * random DAGs of growing size, plus an exhaustive
 * enumeration-vs-path validation pass on small graphs.
 */

#include <benchmark/benchmark.h>

#include <random>

#include "graph/race.hh"
#include "graph/topo.hh"

using namespace specsec::graph;

namespace
{

Tsg
randomDag(std::size_t n, double p, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    Tsg g;
    for (std::size_t i = 0; i < n; ++i)
        g.addNode("n" + std::to_string(i));
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
            if (coin(rng) < p)
                g.addEdge(u, v);
        }
    }
    return g;
}

void
BM_ReachabilityMatrix(benchmark::State &state)
{
    const Tsg g = randomDag(static_cast<std::size_t>(state.range(0)),
                            4.0 / static_cast<double>(state.range(0)),
                            7);
    for (auto _ : state) {
        ReachabilityMatrix m(g);
        benchmark::DoNotOptimize(m.reachable(0, 1));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReachabilityMatrix)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

void
BM_RacePairs(benchmark::State &state)
{
    const Tsg g = randomDag(static_cast<std::size_t>(state.range(0)),
                            4.0 / static_cast<double>(state.range(0)),
                            11);
    for (auto _ : state) {
        auto races = racePairs(g);
        benchmark::DoNotOptimize(races.size());
    }
}
BENCHMARK(BM_RacePairs)->RangeMultiplier(4)->Range(16, 1024);

void
BM_SinglePairQuery(benchmark::State &state)
{
    const Tsg g = randomDag(static_cast<std::size_t>(state.range(0)),
                            4.0 / static_cast<double>(state.range(0)),
                            13);
    const NodeId u = 0;
    const NodeId v = static_cast<NodeId>(g.nodeCount() - 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(hasRace(g, u, v));
}
BENCHMARK(BM_SinglePairQuery)->RangeMultiplier(4)->Range(16, 4096);

void
BM_Theorem1ExhaustiveValidation(benchmark::State &state)
{
    // Definition-level check against the path-based check on every
    // pair of a small random DAG; aborts if they ever disagree.
    std::size_t pairs_checked = 0;
    for (auto _ : state) {
        state.PauseTiming();
        const Tsg g = randomDag(
            7, 0.3,
            static_cast<unsigned>(pairs_checked + 1));
        state.ResumeTiming();
        for (NodeId u = 0; u < g.nodeCount(); ++u) {
            for (NodeId v = u + 1; v < g.nodeCount(); ++v) {
                if (raceByEnumeration(g, u, v) != hasRace(g, u, v))
                    state.SkipWithError("Theorem 1 violated!");
                ++pairs_checked;
            }
        }
    }
    state.counters["pairs"] =
        static_cast<double>(pairs_checked);
}
BENCHMARK(BM_Theorem1ExhaustiveValidation);

void
BM_TopologicalSort(benchmark::State &state)
{
    const Tsg g = randomDag(static_cast<std::size_t>(state.range(0)),
                            4.0 / static_cast<double>(state.range(0)),
                            17);
    for (auto _ : state) {
        auto order = topologicalSort(g);
        benchmark::DoNotOptimize(order.size());
    }
}
BENCHMARK(BM_TopologicalSort)->RangeMultiplier(4)->Range(16, 4096);

} // namespace

BENCHMARK_MAIN();
