/**
 * @file
 * Campaign engine throughput: the full variant x defense matrix
 * (the paper's Table II-style sweep) executed serially and across
 * the worker pool, reporting scenarios/sec and the speedup, and
 * verifying the success matrices are identical.  Also times the
 * same sweep submitted to an in-process campaign daemon (cold and
 * cache-warm) against the offline engine, and writes the headline
 * numbers to BENCH_campaign.json for CI artifact upload.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "attacks/phase.hh"
#include "attacks/snapshot.hh"
#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "campaign/sink.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "tool/report.hh"
#include "tool/stream_export.hh"

using namespace specsec;
using namespace specsec::campaign;

int
main(int argc, char **argv)
{
    unsigned parallel_workers =
        std::max(4u, std::thread::hardware_concurrency());
    std::string json_path = "BENCH_campaign.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   i + 1 < argc) {
            char *end = nullptr;
            const unsigned long n =
                std::strtoul(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || n == 0) {
                std::fprintf(stderr,
                             "--workers: '%s' is not a positive "
                             "integer\n", argv[i]);
                return 2;
            }
            parallel_workers = static_cast<unsigned>(n);
        }
    }

    bench::header("campaign engine: serial vs. parallel sweep");
    const ScenarioSpec spec = ScenarioSpec::defenseMatrix();
    std::printf("grid: %zu variants x %zu defenses = %zu scenarios\n",
                spec.variants.size(), spec.defenses.size(),
                spec.gridSize());

    // Warm-up, excluded from every timed region below: one full
    // pass touches every lazily initialized catalog AND populates
    // the scenario arena pool (attacks/snapshot.hh), so the timed
    // runs measure steady-state sweep throughput rather than
    // one-time snapshot construction.
    CampaignEngine(CampaignEngine::Options{parallel_workers})
        .run(spec);

    const CampaignReport serial =
        CampaignEngine(CampaignEngine::Options{1}).run(spec);
    const CampaignReport parallel =
        CampaignEngine(CampaignEngine::Options{parallel_workers})
            .run(spec);

    bench::rule();
    std::printf("%-10s %8s %8s %12s %14s\n", "mode", "workers",
                "unique", "wall (ms)", "scenarios/sec");
    std::printf("%-10s %8u %8zu %12.1f %14.1f\n", "serial",
                serial.workers, serial.uniqueCount,
                serial.wallMillis, serial.scenariosPerSecond);
    std::printf("%-10s %8u %8zu %12.1f %14.1f\n", "parallel",
                parallel.workers, parallel.uniqueCount,
                parallel.wallMillis, parallel.scenariosPerSecond);
    const double speedup = parallel.wallMillis > 0.0
                               ? serial.wallMillis / parallel.wallMillis
                               : 0.0;
    std::printf("speedup: %.2fx (%u hardware threads)\n", speedup,
                std::thread::hardware_concurrency());

    const bool agree =
        serial.successMatrixText() == parallel.successMatrixText();
    std::printf("success matrices identical: %s\n",
                agree ? "yes" : "NO — BUG");
    if (!agree)
        return 1;

    // Steady state: the same unique keys stamped out through the
    // fork path (pooled snapshot arenas, attacks/snapshot.hh) vs.
    // the rebuild path (Memory/PageTable from scratch per cell).
    // Grid expansion, key extraction and the pool warm-up pass all
    // happen outside the timed region, so the two numbers measure
    // exactly one thing — scenario construction strategy — and
    // their ratio is machine-independent: it is what the CI perf
    // gate (bench/perf_gate.cc) pins against a committed baseline.
    bench::header("steady state: fork vs. rebuild scenario build");
    const ExpandedGrid grid = dedupGrid(spec);
    std::vector<std::string> keys;
    for (const std::size_t u : grid.uniqueIndices)
        keys.push_back(grid.expanded[u].key);
    attacks::PhaseProfile phases;
    const auto timedBatch = [&keys, &phases](
                                attacks::ScenarioBuildMode mode,
                                attacks::WarmSnapshotMode warm,
                                double &rate) {
        const attacks::ScenarioBuildModeGuard guard(mode);
        const attacks::WarmSnapshotModeGuard warmGuard(warm);
        attacks::clearWarmSnapshots();
        const auto noop = [](std::size_t, const KeyBatchItem &) {
            return true;
        };
        std::string err;
        // Untimed warm pass: fills the arena pool under Fork and,
        // under Reuse, the warm-attack snapshot cache — the timed
        // pass below then measures pure steady state.
        if (!executeKeyBatch(keys, 1, nullptr, noop, &err)) {
            std::fprintf(stderr, "key batch: %s\n", err.c_str());
            return false;
        }
        attacks::resetPhaseProfile();
        const auto t0 = std::chrono::steady_clock::now();
        if (!executeKeyBatch(keys, 1, nullptr, noop, &err)) {
            std::fprintf(stderr, "key batch: %s\n", err.c_str());
            return false;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        phases = attacks::phaseProfile();
        rate = ms > 0.0 ? 1000.0 *
                              static_cast<double>(keys.size()) / ms
                        : 0.0;
        return true;
    };
    // Warm snapshots are forced OFF for the rebuild/fork pair so
    // their ratio keeps measuring exactly one thing — scenario
    // construction strategy — and stays comparable across releases.
    double rebuild_rate = 0.0, fork_rate = 0.0, warm_rate = 0.0;
    if (!timedBatch(attacks::ScenarioBuildMode::Rebuild,
                    attacks::WarmSnapshotMode::Rebuild,
                    rebuild_rate) ||
        !timedBatch(attacks::ScenarioBuildMode::Fork,
                    attacks::WarmSnapshotMode::Rebuild, fork_rate))
        return 1;
    // The production path: fork + warm-attack snapshot reuse.  The
    // phase profile captured here is the steady-state breakdown
    // emitted into the JSON artifact.
    if (!timedBatch(attacks::ScenarioBuildMode::Fork,
                    attacks::WarmSnapshotMode::Reuse, warm_rate))
        return 1;
    const double fork_speedup =
        rebuild_rate > 0.0 ? fork_rate / rebuild_rate : 0.0;
    const double warm_attack_speedup =
        fork_rate > 0.0 ? warm_rate / fork_rate : 0.0;
    std::printf("%-10s %8s %14s\n", "mode", "unique",
                "scenarios/sec");
    std::printf("%-10s %8zu %14.1f\n", "rebuild", keys.size(),
                rebuild_rate);
    std::printf("%-10s %8zu %14.1f\n", "fork", keys.size(),
                fork_rate);
    std::printf("%-10s %8zu %14.1f\n", "fork+warm", keys.size(),
                warm_rate);
    std::printf("fork speedup: %.2fx\n", fork_speedup);
    std::printf("warm-attack speedup: %.2fx\n",
                warm_attack_speedup);

    // Per-phase attribution of the production steady-state pass.
    const double totalNs =
        static_cast<double>(phases.totalNanos > 0 ? phases.totalNanos
                                                  : 1);
    const auto pct = [totalNs](std::uint64_t ns) {
        return 100.0 * static_cast<double>(ns) / totalNs;
    };
    std::printf("phases (%llu cells): build %.1f%%  prologue %.1f%%"
                "  body %.1f%%  teardown %.1f%%\n",
                static_cast<unsigned long long>(phases.cells),
                pct(phases.buildNanos), pct(phases.prologueNanos),
                pct(phases.bodyNanos()), pct(phases.teardownNanos));

    // Sink overhead: the same parallel sweep collecting a report
    // only, vs. additionally streaming ordered CSV + JSONL exports
    // as workers finish.  Streaming should cost noise — the export
    // work rides on worker threads that would otherwise idle-wait.
    bench::header("sink overhead: collect vs. collect+streaming");
    const CampaignEngine engine(
        CampaignEngine::Options{parallel_workers});
    const auto timeRun = [&](const std::vector<OutcomeSink *> &s) {
        const auto t0 = std::chrono::steady_clock::now();
        engine.run(spec, s);
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    ReportSink collect_only;
    const double collectMs = timeRun({&collect_only});

    ReportSink collect;
    std::ostringstream csv_out, jsonl_out;
    tool::CsvStreamSink csv_sink(csv_out);
    tool::JsonlStreamSink jsonl_sink(jsonl_out);
    const double streamMs =
        timeRun({&collect, &csv_sink, &jsonl_sink});

    std::printf("%-22s %12s\n", "sinks", "wall (ms)");
    std::printf("%-22s %12.1f\n", "report", collectMs);
    std::printf("%-22s %12.1f\n", "report+csv+jsonl", streamMs);
    std::printf("streaming overhead: %+.1f%%\n",
                collectMs > 0.0
                    ? 100.0 * (streamMs - collectMs) / collectMs
                    : 0.0);

    const bool stream_ok =
        csv_out.str() ==
            tool::campaignCsv(collect.report(), false) &&
        jsonl_out.str() ==
            tool::campaignJsonl(collect.report(), false);
    std::printf("streamed exports match batch exporters: %s\n",
                stream_ok ? "yes" : "NO — BUG");
    if (!stream_ok)
        return 1;

    // Server mode: the identical sweep submitted to an in-process
    // daemon.  Cold pays one execution per unique cell plus the
    // wire round trips; warm is pure protocol + shared-cache cost,
    // the latency a second CI client actually sees.
    bench::header("server mode: offline vs. remote submit");
    serve::Server::Options server_options;
    server_options.workers = parallel_workers;
    serve::Server server(server_options);
    std::string error;
    double coldMs = 0.0, warmMs = 0.0;
    double warm_hit_rate = 0.0;
    bool remote_ok = false;
    if (!server.start(&error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
    }
    std::thread serving([&server] { server.serveForever(); });
    {
        serve::Client client;
        if (!client.connect({"127.0.0.1", server.port()},
                            &error)) {
            std::fprintf(stderr, "connect: %s\n", error.c_str());
            server.stop();
            serving.join();
            return 1;
        }
        ReportSink cold_sink;
        auto t0 = std::chrono::steady_clock::now();
        bool ok = client.run(spec, {&cold_sink}, {}, &error);
        coldMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        ReportSink warm_sink;
        t0 = std::chrono::steady_clock::now();
        ok = ok && client.run(spec, {&warm_sink}, {}, &error);
        warmMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        const CampaignReport cold_report = cold_sink.takeReport();
        const CampaignReport warm = warm_sink.takeReport();
        if (!ok)
            std::fprintf(stderr, "remote run: %s\n",
                         error.c_str());
        warm_hit_rate =
            warm.uniqueCount
                ? static_cast<double>(warm.cacheHits) /
                      static_cast<double>(warm.uniqueCount)
                : 0.0;
        remote_ok =
            ok &&
            tool::campaignJson(cold_report, false) ==
                tool::campaignJson(parallel, false) &&
            warm.executedCount == 0;
    }
    server.stop();
    serving.join();

    std::printf("%-22s %12s %14s\n", "mode", "wall (ms)",
                "cache hits");
    std::printf("%-22s %12.1f %14s\n", "offline (report)",
                collectMs, "-");
    std::printf("%-22s %12.1f %14s\n", "remote cold", coldMs, "0%");
    std::printf("%-22s %12.1f %13.0f%%\n", "remote warm", warmMs,
                100.0 * warm_hit_rate);
    std::printf("remote overhead (cold vs. offline): %+.1f%%\n",
                collectMs > 0.0
                    ? 100.0 * (coldMs - collectMs) / collectMs
                    : 0.0);
    std::printf("remote byte-identical, warm fully cached: %s\n",
                remote_ok ? "yes" : "NO — BUG");
    if (!remote_ok)
        return 1;

    bench::BenchJson out;
    out.set("bench", std::string("campaign"));
    out.set("grid_scenarios",
            static_cast<double>(spec.gridSize()));
    out.set("serial_scenarios_per_sec",
            serial.scenariosPerSecond);
    out.set("parallel_scenarios_per_sec",
            parallel.scenariosPerSecond);
    out.set("parallel_speedup", speedup);
    out.set("warm_rebuild_scenarios_per_sec", rebuild_rate);
    out.set("warm_fork_scenarios_per_sec", fork_rate);
    out.set("fork_speedup", fork_speedup);
    out.set("warm_attack_scenarios_per_sec", warm_rate);
    out.set("warm_attack_speedup", warm_attack_speedup);
    out.set("phase_cells", static_cast<double>(phases.cells));
    out.set("phase_build_pct", pct(phases.buildNanos));
    out.set("phase_prologue_pct", pct(phases.prologueNanos));
    out.set("phase_body_pct", pct(phases.bodyNanos()));
    out.set("phase_teardown_pct", pct(phases.teardownNanos));
    out.set("streaming_overhead_pct",
            collectMs > 0.0
                ? 100.0 * (streamMs - collectMs) / collectMs
                : 0.0);
    out.set("offline_wall_ms", collectMs);
    out.set("serve_cold_wall_ms", coldMs);
    out.set("serve_warm_wall_ms", warmMs);
    out.set("serve_warm_cache_hit_rate", warm_hit_rate);
    if (!out.save(json_path))
        return 1;

    std::printf("\n%s", parallel.successMatrixText().c_str());
    return 0;
}
