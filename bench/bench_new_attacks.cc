/**
 * @file
 * Section V-A made executable: enumerate the three-dimensional
 * attack space (delayed-authorization trigger x secret source x
 * covert channel), verify with Theorem 1 that every point carries
 * the authorization/access race, separate published variants from
 * new-attack candidates — and run one novel candidate (v2 trigger x
 * FPU source) on the simulator to show it actually leaks.
 */

#include "attacks/composed.hh"
#include "bench_util.hh"
#include "core/composer.hh"

using namespace specsec;
using namespace specsec::core;

int
main()
{
    bench::header("Section V-A: the attack space (trigger x source "
                  "x channel)");
    std::size_t total = 0, vulnerable = 0, known = 0;
    for (TriggerKind trigger : allTriggerKinds()) {
        for (SecretSource source : composableSources()) {
            for (CovertChannelKind channel :
                 {CovertChannelKind::FlushReload,
                  CovertChannelKind::PrimeProbe}) {
                const AttackRecipe recipe{trigger, source, channel};
                const AttackGraph g = composeAttack(recipe);
                ++total;
                if (g.isVulnerable())
                    ++vulnerable;
                if (knownVariantFor(recipe))
                    ++known;
            }
        }
    }
    std::printf("  combinations: %zu\n", total);
    std::printf("  model-vulnerable (Theorem 1 race present): %zu\n",
                vulnerable);
    std::printf("  matching a published variant: %zu\n", known);
    std::printf("  NEW attack candidates: %zu\n", vulnerable - known);

    bench::header("per-trigger breakdown (Flush+Reload column)");
    std::printf("%-24s %8s %8s %8s\n", "trigger", "combos",
                "known", "new");
    bench::rule();
    for (TriggerKind trigger : allTriggerKinds()) {
        std::size_t combos = 0, trig_known = 0;
        for (SecretSource source : composableSources()) {
            const AttackRecipe recipe{trigger, source,
                                      CovertChannelKind::FlushReload};
            ++combos;
            if (knownVariantFor(recipe))
                ++trig_known;
        }
        std::printf("%-24s %8zu %8zu %8zu\n",
                    triggerKindName(trigger), combos, trig_known,
                    combos - trig_known);
    }

    bench::header("one new candidate, executed: indirect-branch "
                  "trigger x stale-FPU source");
    const auto vulnerable_run =
        attacks::runComposedV2FpuGadget(uarch::CpuConfig{});
    std::printf("  vulnerable baseline: accuracy %5.1f%%  %s\n",
                vulnerable_run.accuracy * 100.0,
                vulnerable_run.leaked ? "** LEAKS (new attack works) **"
                                      : "blocked");

    uarch::CpuConfig eager;
    eager.defense.eagerFpuSwitch = true;
    const auto eager_run = attacks::runComposedV2FpuGadget(eager);
    std::printf("  + eager FPU switching: accuracy %5.1f%%  %s\n",
                eager_run.accuracy * 100.0,
                eager_run.leaked ? "LEAKS" : "blocked (source gone)");

    uarch::CpuConfig flush;
    flush.defense.flushPredictorOnContextSwitch = true;
    const auto flush_run = attacks::runComposedV2FpuGadget(flush);
    std::printf("  + predictor flush (4): accuracy %5.1f%%  %s\n",
                flush_run.accuracy * 100.0,
                flush_run.leaked ? "LEAKS"
                                 : "blocked (trigger gone)");

    uarch::CpuConfig nda;
    nda.defense.blockSpeculativeForwarding = true;
    const auto nda_run = attacks::runComposedV2FpuGadget(nda);
    std::printf("  + NDA forwarding block (2): accuracy %5.1f%%  "
                "%s\n",
                nda_run.accuracy * 100.0,
                nda_run.leaked ? "LEAKS" : "blocked");

    std::printf("\nthe composed attack falls to either dimension's "
                "defense -- exactly what the\nmodel predicts: "
                "removing any edge of the recipe removes the "
                "race.\n");
    return 0;
}
