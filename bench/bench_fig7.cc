/**
 * @file
 * Reproduction of Fig. 7: Load Value Injection — the attacker
 * plants a value in the buffers and the victim's faulting load
 * injects it into the victim's own transient execution.
 */

#include "bench_util.hh"
#include "core/variants.hh"

using namespace specsec;
using namespace specsec::core;

int
main()
{
    const AttackGraph g = buildAttackGraph(AttackVariant::Lvi);
    bench::header("Fig. 7: TSG model of Load Value Injection (LVI)");
    bench::describeGraph(g);
    std::printf("\ninjection sources (per Table III): L1D cache, "
                "load port, store buffer, line fill buffer\n");
    return 0;
}
